//! The packet-level simulation harness.
//!
//! [`Simulation`] wires the substrates together: sensors beacon and
//! watch their guardees (`robonet-wsn`), failure reports and repair
//! requests travel hop by hop over geographic routing (`robonet-net`)
//! on a CSMA/CA medium (`robonet-radio`), and robots drive to failures
//! and install replacements (`robonet-robot`) under one of the three
//! coordination algorithms (paper §3).
//!
//! # Fidelity notes (see also DESIGN.md)
//!
//! - Sensors build neighbour tables *only* from frames they receive;
//!   failure detection, guardian re-selection and table eviction are
//!   fully protocol-driven.
//! - Robots and the manager route using a location service (every alive
//!   node within their transmission range): the paper's initialization
//!   phase establishes exactly this knowledge ("after initialization,
//!   all the sensors and robots know the manager's location, the
//!   manager knows all robots' locations", §3.1), and sensors never
//!   move.
//! - Initial role knowledge (each sensor's manager / initial `myrobot`)
//!   is installed at construction rather than re-derived from the init
//!   flood, again per the paper's §3.1 post-initialization invariant.
//!   Operational location updates — the Figure 4 metric — are fully
//!   simulated messages.

use std::collections::BTreeMap;

use robonet_des::{rng, sampler, NodeId, Scheduler, SimDuration, SimTime};
use robonet_geom::partition::Partition;
use robonet_geom::{deploy, Bounds, ConvexPolygon, Point};
use robonet_net::{route_with, GeoHeader, NeighborTable, RouteDecision, RouteScratch};
use robonet_radio::engine::{RadioEvent, UpcallBuf, UpcallEntry};
use robonet_radio::medium::{Medium, NodeClass};
use robonet_radio::{Frame, RadioEngine, TrafficClass};
use robonet_robot::{ReplacementTask, RobotState};
use robonet_wsn::failure::FailureProcess;
use robonet_wsn::{GuardianEvent, SensorState};

use crate::config::{DeployRegion, ScenarioConfig};
use crate::coord::{self, Announcement, CoordCtx, Coordinator, FleetView};
use crate::fault::{FaultInjector, FaultKind, TimedFault};
use crate::metrics::Metrics;
use crate::msg::AppMsg;
use crate::obs::timeline::{Checkpoint, HealthMonitor, TelemetrySnapshot};
use crate::obs::{EventSink, NullSink, RingSink, SpanAssembler, SpanReport, TeeSink};
use crate::trace::{DropReason, Trace, TraceEvent};

/// The initial world geometry of a scenario: everything derivable from
/// the configuration alone, before the first protocol event.
///
/// Both the simulation harness and the offline trace replayer
/// ([`crate::obs::replay`]) build the field through
/// [`field_deployment`], so a replay reconstructs the *exact* sensor
/// and robot coordinates of the run that wrote the trace — positions
/// are never serialized into the artifact, only re-derived from
/// `(algorithm, seed, k, sensors_per_robot, area_per_robot_side)`.
pub struct FieldDeployment {
    /// The square field.
    pub bounds: Bounds,
    /// Sensor positions; index `i` is `NodeId(i)`.
    pub sensor_pos: Vec<Point>,
    /// The fixed algorithm's static subarea partition (`None` for
    /// partition-free algorithms).
    pub partition: Option<Box<dyn Partition>>,
    /// Initial robot positions; index `r` is `NodeId(n_sensors + r)`.
    pub robot_pos: Vec<Point>,
    /// The centralized manager's id and location, when the algorithm
    /// uses one.
    pub manager: Option<(NodeId, Point)>,
}

/// Deterministically deploys the field for `cfg`.
///
/// The PRNG stream discipline here is load-bearing: `"deploy"` draws
/// sensor positions, then the coordinator builds its partition, then
/// `"robots"` places the fleet — the exact call order
/// [`Simulation`] construction uses, byte-for-byte. Any change to this
/// order changes every golden artifact in the repo.
pub fn field_deployment(cfg: &ScenarioConfig) -> FieldDeployment {
    let coordinator = coord::coordinator_for(cfg.algorithm);
    let bounds = cfg.bounds();
    let n_sensors = cfg.n_sensors();
    let n_robots = cfg.n_robots();

    let mut deploy_rng = rng::stream(cfg.seed, "deploy");
    let sensor_pos = if cfg.regions.is_empty() {
        deploy::uniform(&mut deploy_rng, &bounds, n_sensors)
    } else {
        weighted_deployment(&mut deploy_rng, &bounds, n_sensors, &cfg.regions)
    };

    let partition: Option<Box<dyn Partition>> = coordinator.build_partition(bounds, cfg.k);

    // Fixed: robots sit at the subarea centres (§3.2); the initial
    // drive there is part of initialization and not a per-failure
    // cost. Partition-free algorithms deploy uniformly.
    let mut robot_rng = rng::stream(cfg.seed, "robots");
    let robot_pos: Vec<Point> = coordinator.initial_robot_positions(
        partition.as_deref(),
        &bounds,
        n_robots,
        &mut robot_rng,
    );

    let manager = coordinator
        .uses_manager()
        .then(|| (NodeId::new((n_sensors + n_robots) as u32), bounds.center()));

    FieldDeployment {
        bounds,
        sensor_pos,
        partition,
        robot_pos,
        manager,
    }
}

/// Density-weighted sensor placement for scenarios with deployment
/// regions: rejection sampling against the piecewise-constant density
/// surface (background 1.0, each region its own multiplier), drawing
/// from the same `"deploy"` stream as uniform placement. With no
/// regions configured, [`field_deployment`] takes the plain
/// [`deploy::uniform`] path, so historical runs draw the exact
/// historical sequence.
pub(crate) fn weighted_deployment<R: rng::Rng + ?Sized>(
    rng: &mut R,
    bounds: &Bounds,
    n: usize,
    regions: &[DeployRegion],
) -> Vec<Point> {
    let dmax = regions.iter().map(|r| r.density).fold(1.0, f64::max);
    let density_at = |p: Point| {
        regions
            .iter()
            .find(|r| r.poly.contains(p))
            .map_or(1.0, |r| r.density)
    };
    (0..n)
        .map(|_| loop {
            let p = deploy::uniform_point(rng, bounds);
            if rng.next_f64() * dmax < density_at(p) {
                break p;
            }
        })
        .collect()
}

/// Applies a per-region lifetime multiplier to an exponential failure
/// draw: the exponential's linear scaling lets one shared draw serve
/// every region (same stream, same draw count), so runs without
/// overrides (`factor == 1.0`, the `Vec` never built) are bit-identical
/// to historical ones.
/// Per-sensor lifetime multipliers from region overrides. Empty unless
/// some region actually overrides the mean, so ordinary runs carry no
/// per-sensor state and [`scale_failure_time`] sees factor `1.0`.
pub(crate) fn region_lifetime_factors(cfg: &ScenarioConfig, sensor_pos: &[Point]) -> Vec<f64> {
    if !cfg.regions.iter().any(|r| r.mean_lifetime.is_some()) {
        return Vec::new();
    }
    let global = cfg.mean_lifetime.as_secs_f64();
    sensor_pos
        .iter()
        .map(|&p| {
            cfg.regions
                .iter()
                .find_map(|r| {
                    let m = r.mean_lifetime?;
                    r.poly.contains(p).then(|| m.as_secs_f64() / global)
                })
                .unwrap_or(1.0)
        })
        .collect()
}

pub(crate) fn scale_failure_time(now: SimTime, at: SimTime, factor: f64) -> SimTime {
    if factor == 1.0 {
        at
    } else {
        now + SimDuration::from_secs(at.duration_since(now).as_secs_f64() * factor)
    }
}

/// Result of a completed run.
#[derive(Debug)]
pub struct Outcome {
    /// The configuration that produced this run.
    pub config: ScenarioConfig,
    /// Collected metrics.
    pub metrics: Metrics,
    /// Protocol-level event trace (empty unless
    /// [`ScenarioConfig::trace_capacity`] is set or an external ring
    /// sink was attached).
    pub trace: Trace,
    /// Per-failure latency decomposition, assembled online from the
    /// same event stream the sinks see (`None` for unobserved runs).
    pub spans: Option<SpanReport>,
    /// Total events the kernel delivered (simulation cost indicator).
    pub events_processed: u64,
    /// Wall-clock phase profile of the scheduler (diagnostic only;
    /// varies run to run and never feeds back into results).
    pub profile: robonet_des::SchedulerProfile,
}

#[derive(Debug)]
enum Event {
    Radio(RadioEvent),
    /// Sensor beacon + detection duties, every beacon period.
    SensorTick {
        sensor: u32,
    },
    /// Robot/manager beacon, every beacon period.
    AgentTick {
        node: u32,
    },
    /// A sensor's exponential lifetime expired.
    Fail {
        sensor: u32,
        incarnation: u32,
    },
    /// A robot reached the failure it was driving to.
    RobotArrive {
        robot: u32,
        leg: u64,
    },
    /// A moving robot crossed a 20 m update-threshold point.
    RobotUpdatePoint {
        robot: u32,
        leg: u64,
    },
    /// Initial robot location announcement (counted as Init traffic).
    InitAnnounce {
        robot: u32,
    },
    /// A flood relay released after its desynchronisation jitter.
    /// Boxed so the one frame-carrying variant does not widen every
    /// slot in the event queue's slab.
    RelaySend {
        frame: Box<Frame<AppMsg>>,
    },
    /// Periodic coverage sample (only when enabled).
    CoverageSample,
    /// Periodic telemetry sample + health check (only when
    /// [`ScenarioConfig::sample_every`] is set).
    TelemetrySample,
    /// An injected robot breakdown fires (faulty runs only).
    RobotBreakdown {
        robot: u32,
    },
    /// A broken-down robot finishes its in-place repair.
    RobotRepair {
        robot: u32,
    },
    /// A scheduled scenario timeline event fires (index into the
    /// plan's timeline; scheduled only when the timeline is non-empty).
    TimelineFault {
        index: u32,
    },
}

struct ManagerView {
    id: NodeId,
    loc: Point,
    /// Last known robot locations (index = robot index).
    robot_locs: Vec<Point>,
    /// Last reported robot queue lengths (for `NearestIdle` dispatch).
    robot_queues: Vec<u32>,
    /// Dispatch dedup: when each sensor was last dispatched for
    /// (indexed by sensor; `None` = never).
    last_dispatch: Vec<Option<SimTime>>,
    /// Dispatches awaiting completion, for the timeout/re-dispatch
    /// machinery. Populated only when faults are active (BTreeMap so
    /// timeout scans are deterministic). Keyed by failed sensor.
    outstanding: BTreeMap<u32, OutstandingDispatch>,
    /// Robots with a timed-out dispatch and no location update since —
    /// skipped by [`Coordinator::choose_dispatch_robot`] until they
    /// report in again.
    suspect: Vec<bool>,
}

/// One dispatch the manager is still waiting on.
#[derive(Debug, Clone, Copy)]
struct OutstandingDispatch {
    /// Robot index the request went to.
    robot: usize,
    /// When this attempt was sent.
    since: SimTime,
    /// Attempt number (1 = original dispatch).
    attempts: u32,
    /// The failure's location (needed to re-dispatch).
    failed_loc: Point,
}

/// The full simulation state. Construct with [`Simulation::new`] and
/// execute with [`Simulation::run_to_completion`], or use the
/// [`Simulation::run`] convenience wrapper.
pub struct Simulation {
    cfg: ScenarioConfig,
    /// The coordination policy (resolved once from `cfg.algorithm`;
    /// every algorithm-specific decision goes through it).
    coord: &'static dyn Coordinator,
    sched: Scheduler<Event>,
    radio: RadioEngine<AppMsg>,
    sensors: Vec<SensorState>,
    incarnation: Vec<u32>,
    robots: Vec<RobotState>,
    robot_leg_seq: Vec<u64>,
    /// Failed-sensor ids queued at each robot, sorted (a robot's queue
    /// stays short, so binary-searched vectors beat hashing).
    robot_pending: Vec<Vec<u32>>,
    robot_tasks_done: Vec<u64>,
    manager: Option<ManagerView>,
    partition: Option<Box<dyn Partition>>,
    sensor_subarea: Vec<u32>,
    failure_proc: FailureProcess,
    metrics: Metrics,
    sink: Box<dyn EventSink>,
    /// Cached `sink.is_enabled()` — the sink half of the [`emit`] gate.
    sink_enabled: bool,
    /// Whether anything (sink or span assembler) is listening — checked
    /// before constructing any event so unobserved runs pay nothing.
    observing: bool,
    /// Assembles repair-lifecycle spans from the live event stream,
    /// active whenever the run is observed.
    spans: Option<SpanAssembler>,
    /// Event-ledger health monitor, active only when telemetry sampling
    /// is on (its invariants are checked at each sample).
    health: Option<HealthMonitor>,
    /// Per-subsystem wall-clock attribution, accumulated by the
    /// dispatch loop when [`Simulation::enable_subsystem_profile`] was
    /// called (zeros otherwise — default runs never read the clock).
    subsystems: robonet_des::SubsystemTimes,
    /// Whether the dispatch loop bills wall time per subsystem.
    profile_subsystems: bool,
    /// Wall-clock heartbeat for `--progress` (stderr only, never
    /// results).
    progress: Option<robonet_des::Heartbeat>,
    upcall_buf: UpcallBuf<AppMsg>,
    /// Reused perimeter-recovery buffers for every routing decision.
    route_scratch: RouteScratch,
    /// Reused location-service table for robot/manager routing steps.
    oracle_scratch: NeighborTable,
    jitter_rng: rng::Xoshiro256,
    /// Deterministic fault injector — `None` for fault-free runs *and*
    /// for inert plans (all probabilities zero, no breakdowns), so an
    /// inert `--faults` run is bit-identical to no `--faults` at all.
    faults: Option<FaultInjector>,
    /// Robots currently broken down (silent, not moving).
    robot_down: Vec<bool>,
    /// Robots degraded to `slow_factor` speed.
    robot_slowed: Vec<bool>,
    /// Whether a peer already declared this robot dead this down-period
    /// (first detector wins; cleared on repair).
    takeover_done: Vec<bool>,
    /// `peer_last_heard[r][p]`: when robot `r` last heard peer `p`'s
    /// beacon. Empty unless the plan can take robots out of service
    /// (probabilistic breakdowns or a scheduled attrition wave).
    peer_last_heard: Vec<Vec<Option<SimTime>>>,
    /// Per-sensor lifetime multiplier from deployment regions (empty
    /// when no region overrides the mean — the common case, which then
    /// costs nothing on the failure path).
    lifetime_factor: Vec<f64>,
    /// Network partitions currently (or soon to be) in force:
    /// `(until, side_a, side_b)`. Frames crossing sides are dropped at
    /// the receiver while `now < until`. Empty unless a timeline
    /// partition has activated.
    active_partitions: Vec<(SimTime, ConvexPolygon, ConvexPolygon)>,
    /// Frames suppressed by an active partition.
    partition_drops: u64,
    /// Timeline events that have fired.
    timeline_fired: u64,
}

impl Simulation {
    /// Builds the world for `cfg` and schedules the initial events.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ScenarioConfig::validate`].
    pub fn new(cfg: ScenarioConfig) -> Self {
        Self::with_sink_opt(cfg, None)
    }

    /// Like [`Simulation::new`], but additionally streams every event
    /// into `sink` (e.g. a [`JsonlSink`](crate::obs::JsonlSink) writing
    /// a `--trace-out` artifact). The in-memory ring configured by
    /// [`ScenarioConfig::trace_capacity`] still works alongside it.
    pub fn with_sink(cfg: ScenarioConfig, sink: Box<dyn EventSink>) -> Self {
        Self::with_sink_opt(cfg, Some(sink))
    }

    fn with_sink_opt(cfg: ScenarioConfig, extra: Option<Box<dyn EventSink>>) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid scenario: {e}");
        }
        let coordinator = coord::coordinator_for(cfg.algorithm);
        let n_sensors = cfg.n_sensors();
        let n_robots = cfg.n_robots();

        // --- Deployment (shared with the offline replayer) ---------------
        let FieldDeployment {
            bounds,
            sensor_pos,
            partition,
            robot_pos,
            ..
        } = field_deployment(&cfg);

        let centralized = coordinator.uses_manager();
        let manager_node = NodeId::new((n_sensors + n_robots) as u32);
        let manager_loc = bounds.center();

        let mut positions = sensor_pos.clone();
        positions.extend_from_slice(&robot_pos);
        let mut classes = vec![NodeClass::Sensor; n_sensors];
        classes.extend(vec![NodeClass::Robot; n_robots]);
        if centralized {
            positions.push(manager_loc);
            classes.push(NodeClass::Manager);
        }
        let medium = Medium::new(bounds, cfg.ranges, &positions, &classes).with_fading(cfg.fading);
        let radio = RadioEngine::new(medium, cfg.mac.clone(), rng::stream(cfg.seed, "mac"));

        // --- Protocol state ---------------------------------------------
        let sensor_subarea: Vec<u32> = match &partition {
            Some(p) => sensor_pos.iter().map(|&s| p.subarea_of(s) as u32).collect(),
            None => vec![u32::MAX; n_sensors],
        };
        let mut sensors: Vec<SensorState> = sensor_pos
            .iter()
            .enumerate()
            .map(|(i, &loc)| SensorState::new(NodeId::new(i as u32), loc))
            .collect();
        // Post-initialization role knowledge (§3.1 invariant): each
        // sensor learns who it reports to from the coordinator.
        let seed_ctx = CoordCtx {
            partition: partition.as_deref(),
            n_sensors,
            n_robots,
            manager: centralized.then_some((manager_node, manager_loc)),
            update_threshold: cfg.update_threshold,
        };
        for (i, s) in sensors.iter_mut().enumerate() {
            coordinator.seed_initial_role(s, sensor_subarea[i], &robot_pos, &seed_ctx);
        }

        let robots: Vec<RobotState> = robot_pos
            .iter()
            .enumerate()
            .map(|(r, &loc)| {
                RobotState::new(NodeId::new((n_sensors + r) as u32), loc, cfg.robot_speed)
            })
            .collect();

        let manager = centralized.then(|| ManagerView {
            id: manager_node,
            loc: manager_loc,
            robot_locs: robot_pos.clone(),
            robot_queues: vec![0; n_robots],
            last_dispatch: vec![None; n_sensors],
            outstanding: BTreeMap::new(),
            suspect: vec![false; n_robots],
        });

        // Fault injection: a dedicated injector with its own PRNG
        // streams, normalised so an inert plan is exactly a fault-free
        // run (no extra draws, events, or state anywhere).
        let mut faults = cfg
            .faults
            .clone()
            .filter(|p| !p.is_inert())
            .map(|p| FaultInjector::new(cfg.seed, p));
        let robot_faults = faults.as_ref().is_some_and(|i| i.plan.has_robot_faults());

        // --- Initial events ----------------------------------------------
        let mut sched = Scheduler::with_horizon(SimTime::ZERO + cfg.sim_time);
        let mut phase_rng = rng::stream(cfg.seed, "phases");
        let mut failure_proc =
            FailureProcess::new(cfg.mean_lifetime, rng::stream(cfg.seed, "lifetimes"));

        // Per-sensor lifetime multipliers from region overrides (built
        // only when a region actually overrides the mean).
        let lifetime_factor = region_lifetime_factors(&cfg, &sensor_pos);

        for i in 0..n_sensors {
            let phase = sampler::uniform_duration(&mut phase_rng, cfg.beacon_period);
            sched.schedule_at(
                SimTime::ZERO + phase,
                Event::SensorTick { sensor: i as u32 },
            );
            let fail_at = scale_failure_time(
                SimTime::ZERO,
                failure_proc.sample_failure_at(SimTime::ZERO),
                lifetime_factor.get(i).copied().unwrap_or(1.0),
            );
            if fail_at <= sched.horizon() {
                sched.schedule_at(
                    fail_at,
                    Event::Fail {
                        sensor: i as u32,
                        incarnation: 0,
                    },
                );
            }
        }
        for r in 0..n_robots {
            let phase = sampler::uniform_duration(&mut phase_rng, cfg.beacon_period);
            sched.schedule_at(
                SimTime::ZERO + phase,
                Event::AgentTick {
                    node: (n_sensors + r) as u32,
                },
            );
            // Initial announcement (paper §3.1/§3.2 initialization),
            // counted under the Init traffic class.
            let jitter = sampler::uniform_duration(&mut phase_rng, SimDuration::from_secs(2.0));
            sched.schedule_at(
                SimTime::ZERO + jitter,
                Event::InitAnnounce { robot: r as u32 },
            );
        }
        if centralized {
            let phase = sampler::uniform_duration(&mut phase_rng, cfg.beacon_period);
            sched.schedule_at(
                SimTime::ZERO + phase,
                Event::AgentTick {
                    node: manager_node.as_u32(),
                },
            );
        }
        if let Some(cov) = cfg.coverage_sample {
            sched.schedule_at(SimTime::ZERO + cov.period, Event::CoverageSample);
        }
        if let Some(every) = cfg.sample_every {
            sched.schedule_at(SimTime::ZERO + every, Event::TelemetrySample);
        }
        // First breakdown per robot (exponential interarrival from the
        // injector's own stream; robot order fixes the draw order).
        if let Some(inj) = faults.as_mut() {
            for r in 0..n_robots {
                if let Some(delay) = inj.next_breakdown_delay() {
                    sched.schedule_at(
                        SimTime::ZERO + delay,
                        Event::RobotBreakdown { robot: r as u32 },
                    );
                }
            }
            // Scheduled timeline events, pinned at their (scaled) sim
            // times. Validation bounds them by sim_time, so none fall
            // past the horizon.
            for (i, event) in inj.plan.timeline.iter().enumerate() {
                sched.schedule_at(
                    SimTime::ZERO + event.at(),
                    Event::TimelineFault { index: i as u32 },
                );
            }
        }

        let cfg_seed = cfg.seed;
        let ring: Option<Box<dyn EventSink>> = (cfg.trace_capacity > 0)
            .then(|| Box::new(RingSink::with_capacity(cfg.trace_capacity)) as Box<dyn EventSink>);
        let sink: Box<dyn EventSink> = match (ring, extra) {
            (Some(ring), Some(extra)) => Box::new(TeeSink::new().with(ring).with(extra)),
            (Some(ring), None) => ring,
            (None, Some(extra)) => extra,
            (None, None) => Box::new(NullSink),
        };
        let sink_enabled = sink.is_enabled();
        // Telemetry sampling needs the event stream (the health
        // monitor's ledger is built from it), so sampling forces
        // observation on even without a sink — like `--progress` does.
        let sampling = cfg.sample_every.is_some();
        Simulation {
            cfg,
            coord: coordinator,
            sched,
            radio,
            incarnation: vec![0; n_sensors],
            sensors,
            robots,
            robot_leg_seq: vec![0; n_robots],
            robot_pending: vec![Vec::new(); n_robots],
            robot_tasks_done: vec![0; n_robots],
            manager,
            partition,
            sensor_subarea,
            failure_proc,
            metrics: Metrics::default(),
            sink,
            sink_enabled,
            observing: sink_enabled || sampling,
            spans: (sink_enabled || sampling).then(SpanAssembler::new),
            health: sampling.then(HealthMonitor::new),
            subsystems: robonet_des::SubsystemTimes::default(),
            profile_subsystems: false,
            progress: None,
            upcall_buf: UpcallBuf::new(),
            route_scratch: RouteScratch::default(),
            oracle_scratch: NeighborTable::new(),
            jitter_rng: rng::stream(cfg_seed, "jitter"),
            faults,
            robot_down: vec![false; n_robots],
            robot_slowed: vec![false; n_robots],
            takeover_done: vec![false; n_robots],
            peer_last_heard: if robot_faults {
                vec![vec![None; n_robots]; n_robots]
            } else {
                Vec::new()
            },
            lifetime_factor,
            active_partitions: Vec::new(),
            partition_drops: 0,
            timeline_fired: 0,
        }
    }

    /// Enables periodic sim-time/wall-time/open-span heartbeats on
    /// stderr, roughly every `every` of wall time (the CLI's
    /// `--progress`). Forces span assembly on so the open-span count is
    /// live; simulation results are unaffected.
    pub fn enable_progress(&mut self, every: std::time::Duration) {
        self.progress = Some(robonet_des::Heartbeat::new(every));
        if self.spans.is_none() {
            self.spans = Some(SpanAssembler::new());
            self.observing = true;
        }
    }

    /// Records one event into every listener: the health monitor, the
    /// span assembler and (when enabled) the sink. Emission sites gate
    /// on `self.observing` before constructing the event, so unobserved
    /// runs never even build it.
    fn emit(&mut self, event: TraceEvent) {
        if let Some(monitor) = self.health.as_mut() {
            monitor.ingest(&event);
        }
        if let Some(assembler) = self.spans.as_mut() {
            assembler.ingest(&event);
        }
        if self.sink_enabled {
            self.sink.record(&event);
        }
    }

    /// Enables per-subsystem wall-clock attribution in the dispatch
    /// loop (`--profile-out`). Costs two clock reads per event, so it
    /// is opt-in; results land on [`Outcome::profile`] only — never in
    /// deterministic outputs.
    pub fn enable_subsystem_profile(&mut self) {
        self.profile_subsystems = true;
    }

    /// Convenience: build and run to the configured horizon.
    pub fn run(cfg: ScenarioConfig) -> Outcome {
        Simulation::new(cfg).run_to_completion()
    }

    /// Drains every event up to the horizon and returns the outcome.
    pub fn run_to_completion(mut self) -> Outcome {
        while let Some(ev) = self.sched.next_event() {
            let now = self.sched.now();
            if self.profile_subsystems {
                self.dispatch_timed(now, ev);
            } else {
                self.dispatch(now, ev);
            }
            if let Some(hb) = self.progress.as_mut() {
                if hb.due() {
                    let p = self.sched.profile();
                    let open = self.spans.as_ref().map_or(0, SpanAssembler::open_count);
                    eprintln!(
                        "[progress] sim {:.0} s | wall {:.1} s | {} events | {} open spans",
                        p.sim_seconds, p.wall_seconds, p.events_dispatched, open
                    );
                }
            }
        }
        self.finalize()
    }

    fn finalize(mut self) -> Outcome {
        self.metrics.robot_odometers = self.robots.iter().map(RobotState::odometer).collect();
        self.metrics.tasks_per_robot = self.robot_tasks_done.clone();
        self.metrics.myrobot_accuracy = self.myrobot_accuracy();
        self.metrics.tx = self.radio.stats().clone();
        self.snapshot_registry();
        let spans = self.spans.take().map(SpanAssembler::finish);
        if let Some(report) = &spans {
            report.snapshot_into(&mut self.metrics.counters);
        }
        self.sink.finish();
        let trace = self.sink.take_trace().unwrap_or_default();
        let mut profile = self.sched.profile();
        profile.subsystems = self.subsystems;
        Outcome {
            config: self.cfg,
            metrics: self.metrics,
            trace,
            spans,
            events_processed: self.sched.delivered_count(),
            profile,
        }
    }

    /// Populates the per-subsystem counter/histogram registry from the
    /// run's raw metrics. Done once at the end of the run — subsystems
    /// keep their cheap dedicated counters on the hot path, and the
    /// registry is the uniform externally-visible snapshot of them.
    fn snapshot_registry(&mut self) {
        let m = &mut self.metrics;
        let c = &mut m.counters;

        let ns = self.coord.obs_namespace();
        c.set(ns, "reports_sent", m.reports_sent);
        c.set(ns, "reports_delivered", m.reports_delivered);
        c.set(ns, "requests_sent", m.requests_sent);
        c.set(ns, "requests_delivered", m.requests_delivered);
        c.set(ns, "replacements", m.replacements);
        c.set(ns, "spurious_replacements", m.spurious_replacements);
        c.set(ns, "failures_occurred", m.failures_occurred);

        c.set(
            "net.routing",
            "drops.ttl_expired",
            m.packets_dropped.ttl_expired,
        );
        c.set(
            "net.routing",
            "drops.no_neighbors",
            m.packets_dropped.no_neighbors,
        );
        c.set("radio.mac", "drops.give_up", m.packets_dropped.mac_give_up);

        let t = m.tx.totals();
        c.set("radio.mac", "data_tx", t.data_tx);
        c.set("radio.mac", "ack_tx", t.ack_tx);
        c.set("radio.mac", "delivered", t.delivered);
        c.set("radio.mac", "dropped", t.dropped);
        c.set("radio.mac", "collisions", t.collisions);

        let profile = self.sched.profile();
        c.set(
            "des.scheduler",
            "events_dispatched",
            profile.events_dispatched,
        );
        c.set(
            "des.scheduler",
            "queue_high_water",
            profile.queue_high_water as u64,
        );

        // Fault-injection and recovery counters exist only for faulty
        // runs, so fault-free registries stay byte-identical to pre-PR.
        if self.faults.is_some() {
            let fs = m.faults;
            c.set("fault", "report_drops", fs.report_drops);
            c.set("fault", "dispatch_drops", fs.dispatch_drops);
            c.set("fault", "update_drops", fs.update_drops);
            c.set("fault", "robot_breakdowns", fs.robot_breakdowns);
            c.set("fault", "robot_slowdowns", fs.robot_slowdowns);
            c.set("recovery", "report_retries", fs.report_retries);
            c.set("recovery", "reports_abandoned", fs.reports_abandoned);
            c.set("recovery", "dispatch_timeouts", fs.dispatch_timeouts);
            c.set("recovery", "redispatches", fs.redispatches);
            c.set("recovery", "dispatches_abandoned", fs.dispatches_abandoned);
            c.set("recovery", "robot_repairs", fs.robot_repairs);
            c.set("recovery", "takeovers", fs.takeovers);
        }
        // Timeline counters exist only for runs with a scheduled fault
        // timeline, so probabilistic-fault registries stay byte-identical.
        if self
            .faults
            .as_ref()
            .is_some_and(|i| !i.plan.timeline.is_empty())
        {
            c.set("fault", "timeline_events", self.timeline_fired);
            c.set("fault", "partition_drops", self.partition_drops);
        }

        for &hops in &m.report_hops {
            c.observe("net.routing", "report_hops", f64::from(hops));
        }
        for &travel in &m.travel_per_task {
            c.observe("robot.fleet", "travel_m", travel);
        }
        for &delay in &m.repair_delay {
            c.observe("robot.fleet", "repair_delay_s", delay);
        }
    }

    /// Fraction of alive sensors whose `myrobot` is truly the closest
    /// robot right now (1.0 for the centralized algorithm, which has no
    /// `myrobot` concept).
    fn myrobot_accuracy(&self) -> f64 {
        if !self.coord.uses_myrobot() {
            return 1.0;
        }
        let now = self.sched.now();
        let robot_locs: Vec<Point> = self.robots.iter().map(|r| r.position_at(now)).collect();
        let mut correct = 0usize;
        let mut total = 0usize;
        for s in &self.sensors {
            if !s.alive {
                continue;
            }
            total += 1;
            let truth = self
                .coord
                .myrobot_truth(s.loc, self.sensor_subarea[s.id.index()], &robot_locs)
                .expect("myrobot algorithms define a ground truth");
            if let Some((robot, _)) = s.myrobot {
                if robot.index() == self.sensors.len() + truth {
                    correct += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            correct as f64 / total as f64
        }
    }

    // --- Event dispatch ---------------------------------------------------

    /// [`dispatch`](Self::dispatch) wrapped in a scoped timer that
    /// bills the event whole to the subsystem owning its handler.
    /// Attribution is wall-clock and diagnostic only.
    fn dispatch_timed(&mut self, now: SimTime, ev: Event) {
        let bucket = match &ev {
            Event::Radio(_) => 0,
            Event::RelaySend { .. } => 1,
            Event::CoverageSample | Event::TelemetrySample => 2,
            _ => 3,
        };
        let start = std::time::Instant::now();
        self.dispatch(now, ev);
        let dt = start.elapsed().as_secs_f64();
        match bucket {
            0 => self.subsystems.radio_s += dt,
            1 => self.subsystems.routing_s += dt,
            2 => self.subsystems.obs_sink_s += dt,
            _ => self.subsystems.coord_s += dt,
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Radio(rev) => self.on_radio(now, rev),
            Event::SensorTick { sensor } => self.on_sensor_tick(now, sensor as usize),
            Event::AgentTick { node } => self.on_agent_tick(now, node),
            Event::Fail {
                sensor,
                incarnation,
            } => self.on_fail(now, sensor as usize, incarnation),
            Event::RobotArrive { robot, leg } => self.on_robot_arrive(now, robot as usize, leg),
            Event::RobotUpdatePoint { robot, leg } => {
                self.on_robot_update_point(now, robot as usize, leg)
            }
            Event::InitAnnounce { robot } => {
                self.do_location_update(now, robot as usize, TrafficClass::Init)
            }
            Event::RelaySend { frame } => self.radio_send(now, *frame),
            Event::CoverageSample => self.on_coverage_sample(now),
            Event::TelemetrySample => self.on_telemetry_sample(now),
            Event::RobotBreakdown { robot } => self.on_robot_breakdown(now, robot as usize),
            Event::RobotRepair { robot } => self.on_robot_repair(now, robot as usize),
            Event::TimelineFault { index } => self.on_timeline_fault(now, index as usize),
        }
    }

    /// A scheduled scenario fault fires. All decisions are
    /// deterministic given the plan; the only RNG use is attrition's
    /// victim pick, which draws from the breakdown stream.
    fn on_timeline_fault(&mut self, now: SimTime, index: usize) {
        self.timeline_fired += 1;
        let event = self
            .faults
            .as_ref()
            .expect("timeline events imply faults")
            .plan
            .timeline[index]
            .clone();
        match event {
            TimedFault::Blackout { region, .. } => {
                // Every alive sensor in the region dies through the
                // ordinary failure path (same incarnation guard, same
                // trace events), so detection and replacement proceed
                // exactly as for a lifetime expiry.
                for s in 0..self.sensors.len() {
                    if self.sensors[s].alive && region.contains(self.sensors[s].loc) {
                        let incarnation = self.incarnation[s];
                        self.on_fail(now, s, incarnation);
                    }
                }
            }
            TimedFault::Partition { until, a, b, .. } => {
                self.active_partitions.push((SimTime::ZERO + until, a, b));
            }
            TimedFault::Attrition { robots, .. } => {
                let candidates: Vec<usize> = (0..self.robots.len())
                    .filter(|&r| !self.robot_down[r])
                    .collect();
                let victims = self
                    .faults
                    .as_mut()
                    .expect("checked above")
                    .attrition_victims(&candidates, robots as usize);
                for r in victims {
                    // Attrition is permanent: no in-place repair even
                    // when the plan allows repairs for random breakdowns.
                    self.kill_robot(now, r);
                }
            }
            TimedFault::LossRate {
                report,
                dispatch,
                update,
                ..
            } => {
                self.faults
                    .as_mut()
                    .expect("checked above")
                    .set_loss_rates(report, dispatch, update);
            }
        }
    }

    /// `true` when an active partition separates the immediate
    /// transmitter from the receiver; such frames die at the receiver.
    fn partition_blocks(&self, now: SimTime, src: NodeId, dst: NodeId) -> bool {
        let sp = self.node_position(now, src);
        let dp = self.node_position(now, dst);
        self.active_partitions.iter().any(|(until, a, b)| {
            now < *until
                && ((a.contains(sp) && b.contains(dp)) || (b.contains(sp) && a.contains(dp)))
        })
    }

    fn on_radio(&mut self, now: SimTime, rev: RadioEvent) {
        let mut out = std::mem::take(&mut self.upcall_buf);
        {
            let radio = &mut self.radio;
            let sched = &mut self.sched;
            radio.handle(
                now,
                rev,
                &mut |at, e| {
                    sched.schedule_at(at, Event::Radio(e));
                },
                &mut out,
            );
        }
        for i in 0..out.entries().len() {
            match out.entries()[i] {
                UpcallEntry::Delivered { to, frame } => {
                    self.on_delivered(now, to, out.frame(frame));
                }
                UpcallEntry::TxComplete { src, frame, ok } => {
                    if !ok {
                        self.on_tx_failed(now, src, out.frame(frame));
                    }
                }
            }
        }
        out.clear();
        self.upcall_buf = out;
    }

    fn radio_send(&mut self, now: SimTime, frame: Frame<AppMsg>) {
        let radio = &mut self.radio;
        let sched = &mut self.sched;
        radio.send(now, frame, &mut |at, e| {
            sched.schedule_at(at, Event::Radio(e));
        });
    }

    fn on_coverage_sample(&mut self, now: SimTime) {
        let Some(cov) = self.cfg.coverage_sample else {
            return;
        };
        self.sched.schedule_after(cov.period, Event::CoverageSample);
        let positions: Vec<Point> = self.sensors.iter().map(|s| s.loc).collect();
        let alive: Vec<bool> = self.sensors.iter().map(|s| s.alive).collect();
        let dead = alive.iter().filter(|&&a| !a).count() as u32;
        let fraction = robonet_wsn::coverage::coverage_fraction(
            &self.cfg.bounds(),
            &positions,
            &alive,
            cov.sensing_range,
            cov.resolution,
        );
        self.metrics
            .coverage_timeline
            .push((now.as_secs_f64(), fraction, dead));
    }

    /// Fires the telemetry sampler: capture a [`TelemetrySnapshot`] of
    /// live gauges, emit it as a trace event, and run the health
    /// monitor's conservation checks. Everything read here sits on the
    /// sim-time event axis, so same-seed runs sample identical values.
    fn on_telemetry_sample(&mut self, now: SimTime) {
        let Some(every) = self.cfg.sample_every else {
            return;
        };
        self.sched.schedule_after(every, Event::TelemetrySample);
        let t = now.as_secs_f64();

        let alive = self.sensors.iter().filter(|s| s.alive).count() as u32;
        let down = self.sensors.len() as u32 - alive;
        // Coverage reuses the coverage-sampling geometry when that is
        // configured, its defaults otherwise.
        let cov = self.cfg.coverage_sample.unwrap_or_default();
        let positions: Vec<Point> = self.sensors.iter().map(|s| s.loc).collect();
        let alive_mask: Vec<bool> = self.sensors.iter().map(|s| s.alive).collect();
        let coverage = robonet_wsn::coverage::coverage_fraction(
            &self.cfg.bounds(),
            &positions,
            &alive_mask,
            cov.sensing_range,
            cov.resolution,
        );
        let stages = self
            .health
            .as_ref()
            .map_or([0; 4], HealthMonitor::stage_counts);
        let sample = TelemetrySnapshot {
            alive,
            down,
            failures: self.metrics.failures_occurred,
            replaced: self.metrics.replacements,
            coverage,
            open_failure: stages[0],
            open_detected: stages[1],
            open_reported: stages[2],
            open_dispatched: stages[3],
            robot_queues: self.robot_pending.iter().map(|q| q.len() as u32).collect(),
            robot_busy: self
                .robots
                .iter()
                .map(|r| r.current_leg().is_some())
                .collect(),
            in_flight: self.radio.in_flight() as u32,
            sched_queue: self.sched.pending() as u32,
        };
        self.metrics.telemetry_timeline.push((t, sample.clone()));
        self.emit(TraceEvent::TelemetrySample { t, sample });

        let checkpoint = Checkpoint {
            failures: self.metrics.failures_occurred,
            replacements: self.metrics.replacements,
            open_spans: self.spans.as_ref().map(|a| a.open_count() as u64),
            robots_down: self.robot_down.iter().filter(|&&d| d).count() as u64,
        };
        let violations = self
            .health
            .as_ref()
            .map_or_else(Vec::new, |m| m.check(t, &checkpoint));
        for violation in violations {
            self.metrics.invariant_violations += 1;
            self.emit(violation);
        }
    }

    // --- Periodic node duties ----------------------------------------------

    fn on_sensor_tick(&mut self, now: SimTime, s: usize) {
        self.sched.schedule_after(
            self.cfg.beacon_period,
            Event::SensorTick { sensor: s as u32 },
        );
        if !self.sensors[s].alive {
            return;
        }
        let loc = self.sensors[s].loc;
        let src = self.sensors[s].id;
        // Beacon to one-hop neighbours.
        let beacon = AppMsg::Beacon { loc };
        self.radio_send(
            now,
            Frame {
                src,
                dst: None,
                bytes: beacon.wire_bytes(),
                class: TrafficClass::Beacon,
                payload: beacon,
            },
        );

        let timeout = self.cfg.failure_timeout();

        // Evict neighbours that stopped beaconing (stale robots that
        // moved away, silently failed sensors).
        let cutoff = if now.as_nanos() > timeout.as_nanos() {
            now - timeout
        } else {
            SimTime::ZERO
        };
        self.sensors[s].neighbors.evict_stale(cutoff);

        // Report silent guardees. Fault-free runs report once and stop
        // watching; with faults active the guardian keeps the watch and
        // retries with exponential backoff until the guardee beacons
        // again (replaced) or the attempt budget runs out (explicit
        // orphan).
        let max_attempts = self.faults.as_ref().map(|i| i.plan.max_report_attempts);
        let silent = self.sensors[s].silent_guardees(now, timeout);
        for g in silent {
            if !self.sensors[s].should_report(g, now) {
                continue;
            }
            if let Some(max_attempts) = max_attempts {
                let attempt = self.sensors[s].note_report_attempt(g);
                if attempt > max_attempts {
                    self.sensors[s].forget_failed_neighbor(g);
                    self.metrics.faults.reports_abandoned += 1;
                    continue;
                }
                let window = FaultInjector::report_backoff(self.cfg.report_retry, attempt);
                self.sensors[s].mark_reported(g, now, window);
                self.sensors[s].scrub_failed_neighbor(g);
                if attempt >= 2 && self.coord.evict_myrobot_on_retry() {
                    self.evict_stale_myrobot(s);
                }
                self.send_failure_report(now, s, g, attempt);
            } else {
                self.sensors[s].mark_reported(g, now, self.cfg.report_retry);
                self.sensors[s].forget_failed_neighbor(g);
                self.send_failure_report(now, s, g, 1);
            }
        }

        // Replace a lost guardian.
        if let GuardianEvent::GuardianLost(g) = self.sensors[s].check_guardian(now, timeout) {
            self.sensors[s].forget_failed_neighbor(g);
        }
        if self.sensors[s].guardian.is_none() && !self.sensors[s].neighbors.is_empty() {
            self.pick_and_confirm_guardian(now, s);
        }
    }

    fn pick_and_confirm_guardian(&mut self, now: SimTime, s: usize) {
        let n_sensors = self.sensors.len();
        let my_sub = self.sensor_subarea[s];
        let is_fixed = self.coord.guardian_requires_same_subarea();
        // Guardians must be sensors; in the fixed algorithm the pair must
        // share a subarea (§3.2). Sensors are static, so subarea can be
        // looked up from deployment data.
        let subareas = &self.sensor_subarea;
        let pick = self.sensors[s].pick_guardian(now, |id| {
            id.index() < n_sensors && (!is_fixed || subareas[id.index()] == my_sub)
        });
        if let Some(g) = pick {
            let src = self.sensors[s].id;
            let msg = AppMsg::GuardianConfirm;
            self.radio_send(
                now,
                Frame {
                    src,
                    dst: Some(g),
                    bytes: msg.wire_bytes(),
                    class: TrafficClass::Init,
                    payload: msg,
                },
            );
        }
    }

    fn on_agent_tick(&mut self, now: SimTime, node: u32) {
        self.sched
            .schedule_after(self.cfg.beacon_period, Event::AgentTick { node });
        let id = NodeId::new(node);
        let r = self.robot_index(id);
        if let Some(r) = r {
            if self.robot_down[r] {
                return; // broken down: silent until repaired
            }
        }
        let loc = self.agent_position(now, id);
        self.radio.set_position(id, loc);
        let beacon = AppMsg::Beacon { loc };
        self.radio_send(
            now,
            Frame {
                src: id,
                dst: None,
                bytes: beacon.wire_bytes(),
                class: TrafficClass::Beacon,
                payload: beacon,
            },
        );
        // Fault-tolerance duties ride on the beacon clock (both are
        // no-ops in fault-free runs).
        match r {
            Some(r) => self.check_peer_takeover(now, r),
            None => self.check_dispatch_timeouts(now),
        }
    }

    fn agent_position(&self, now: SimTime, id: NodeId) -> Point {
        match self.robot_index(id) {
            Some(r) => self.robots[r].position_at(now),
            None => {
                self.manager
                    .as_ref()
                    .expect("manager beacons only when present")
                    .loc
            }
        }
    }

    // --- Failures -----------------------------------------------------------

    fn on_fail(&mut self, now: SimTime, s: usize, incarnation: u32) {
        if self.incarnation[s] != incarnation || !self.sensors[s].alive {
            return;
        }
        self.sensors[s].alive = false;
        self.radio.set_alive(self.sensors[s].id, false);
        self.metrics.failures_occurred += 1;
        if self.observing {
            self.emit(TraceEvent::Failure {
                t: now.as_secs_f64(),
                sensor: self.sensors[s].id,
            });
        }
    }

    /// A sensor whose `myrobot` keeps ignoring reports drops it from
    /// its table, falling back to the next-closest known robot (dynamic
    /// algorithm only, via [`Coordinator::evict_myrobot_on_retry`]).
    fn evict_stale_myrobot(&mut self, s: usize) {
        if self.sensors[s].robot_locs.len() < 2 {
            return; // never discard the last known robot
        }
        if let Some((robot, _)) = self.sensors[s].myrobot {
            self.sensors[s].forget_robot(robot);
        }
    }

    fn send_failure_report(&mut self, now: SimTime, guardian: usize, failed: NodeId, attempt: u32) {
        let failed_loc = self.sensors[failed.index()].loc;
        let (dst, dst_loc) = self.coord.report_target(&self.sensors[guardian]);
        self.metrics.reports_sent += 1;
        if attempt >= 2 {
            self.metrics.faults.report_retries += 1;
        }
        let origin = self.sensors[guardian].id;
        if self.observing {
            if attempt <= 1 {
                self.emit(TraceEvent::Detected {
                    t: now.as_secs_f64(),
                    guardian: origin,
                    failed,
                });
            } else {
                self.emit(TraceEvent::ReportRetried {
                    t: now.as_secs_f64(),
                    guardian: origin,
                    failed,
                    attempt,
                });
            }
        }
        // Injected link loss: the report leaves the guardian but dies
        // en route; the retry machinery re-drives it.
        let dropped = self
            .faults
            .as_mut()
            .is_some_and(|inj| inj.drop_message(FaultKind::ReportLoss));
        if dropped {
            self.metrics.faults.report_drops += 1;
            if self.observing {
                self.emit(TraceEvent::FaultInjected {
                    t: now.as_secs_f64(),
                    kind: FaultKind::ReportLoss,
                    node: origin,
                });
            }
            return;
        }
        let msg = AppMsg::Report {
            failed,
            failed_loc,
            geo: GeoHeader::new(dst, dst_loc),
        };
        self.originate_geo(now, origin, msg, TrafficClass::FailureReport);
    }

    // --- Geographic routing glue ---------------------------------------------

    /// Routes a freshly created geo message from `origin` (first hop).
    fn originate_geo(&mut self, now: SimTime, origin: NodeId, msg: AppMsg, class: TrafficClass) {
        self.route_and_send(now, origin, msg, class, None);
    }

    /// Forwards a geo message held by `at` (arrived from `prev`).
    fn route_and_send(
        &mut self,
        now: SimTime,
        at: NodeId,
        mut msg: AppMsg,
        class: TrafficClass,
        prev_loc: Option<Point>,
    ) {
        let at_loc = self.node_position(now, at);
        let mut hdr = *msg.geo().expect("route_and_send requires a geo header");
        let decision = if at.index() < self.sensors.len() {
            route_with(
                &mut self.route_scratch,
                at,
                at_loc,
                &self.sensors[at.index()].neighbors,
                &mut hdr,
                prev_loc,
            )
        } else {
            let mut table = std::mem::take(&mut self.oracle_scratch);
            self.fill_oracle_table(&mut table, now, at);
            let d = route_with(
                &mut self.route_scratch,
                at,
                at_loc,
                &table,
                &mut hdr,
                prev_loc,
            );
            self.oracle_scratch = table;
            d
        };
        match decision {
            RouteDecision::Deliver => self.handle_final(now, at, msg),
            RouteDecision::Forward(next) => {
                *msg.geo_mut().expect("checked above") = hdr;
                let bytes = msg.wire_bytes();
                self.radio_send(
                    now,
                    Frame {
                        src: at,
                        dst: Some(next),
                        bytes,
                        class,
                        payload: msg,
                    },
                );
            }
            RouteDecision::Drop(why) => {
                let reason = DropReason::from(why);
                self.metrics.packets_dropped.record(reason);
                if self.observing {
                    self.emit(TraceEvent::PacketDropped {
                        t: now.as_secs_f64(),
                        at,
                        reason,
                    });
                }
            }
        }
    }

    /// Location-service table for robots and the manager: every alive
    /// node within transmission range at its current position (§3.1's
    /// post-initialization knowledge; sensors are static).
    fn fill_oracle_table(&self, table: &mut NeighborTable, now: SimTime, at: NodeId) {
        table.clear();
        let medium = self.radio.medium();
        medium.for_each_hearer(at, |n| {
            let loc = if n.index() < self.sensors.len() {
                self.sensors[n.index()].loc
            } else {
                self.node_position(now, n)
            };
            table.update(n, loc, now);
        });
    }

    fn node_position(&self, now: SimTime, id: NodeId) -> Point {
        if id.index() < self.sensors.len() {
            self.sensors[id.index()].loc
        } else {
            self.agent_position(now, id)
        }
    }

    fn robot_index(&self, id: NodeId) -> Option<usize> {
        let i = id.index();
        let n = self.sensors.len();
        (i >= n && i < n + self.robots.len()).then(|| i - n)
    }

    // --- Application-layer message handling ----------------------------------

    fn on_delivered(&mut self, now: SimTime, to: NodeId, frame: &Frame<AppMsg>) {
        // A scheduled network partition severs links between its two
        // regions: frames whose immediate transmitter sits on the other
        // side die at the receiver. (Empty unless a timeline partition
        // has activated, so ordinary runs pay one Vec::is_empty.)
        if !self.active_partitions.is_empty() && self.partition_blocks(now, frame.src, to) {
            self.partition_drops += 1;
            return;
        }
        match frame.payload {
            AppMsg::Beacon { loc } => {
                // Robots overhear each other's beacons to maintain peer
                // heartbeats (allocated only when breakdowns can occur).
                if !self.peer_last_heard.is_empty() {
                    if let (Some(rt), Some(rs)) =
                        (self.robot_index(to), self.robot_index(frame.src))
                    {
                        self.peer_last_heard[rt][rs] = Some(now);
                    }
                }
                self.hear_guarded(now, to, frame.src, loc)
            }
            AppMsg::GuardianConfirm => {
                if to.index() < self.sensors.len() && self.sensors[to.index()].alive {
                    self.sensors[to.index()].add_guardee(frame.src, now);
                }
            }
            AppMsg::RobotHello {
                robot,
                loc,
                manager,
            } => self.on_robot_hello(now, to, frame.src, robot, loc, manager),
            AppMsg::RobotFlood {
                robot,
                loc,
                seq,
                subarea,
                defunct,
            } => self.on_robot_flood(now, to, frame, robot, loc, seq, subarea, defunct),
            ref geo_msg @ (AppMsg::Report { .. }
            | AppMsg::Request { .. }
            | AppMsg::RobotToManagerUpdate { .. }) => {
                let hdr = geo_msg.geo().expect("geo variants carry headers");
                if hdr.dst == to {
                    let msg = frame.payload.clone();
                    self.handle_final(now, to, msg);
                } else {
                    let prev = self.node_position(now, frame.src);
                    let msg = frame.payload.clone();
                    self.route_and_send(now, to, msg, frame.class, Some(prev));
                }
            }
        }
    }

    /// A node heard a location-bearing frame directly from `from`; it
    /// only enters the routing neighbour table if the advertised
    /// location is within the *receiver's own* transmission range, so
    /// asymmetric links (robot heard at 200 m by a 63 m sensor) never
    /// become forwarding edges.
    fn hear_guarded(&mut self, now: SimTime, to: NodeId, from: NodeId, loc: Point) {
        if to.index() >= self.sensors.len() {
            return; // robots and the manager use the location service
        }
        if !self.sensors[to.index()].alive {
            return;
        }
        // Robots move up to one update threshold between announcements;
        // only accept them as forwarding neighbours with that margin in
        // hand (the paper's rationale for the 20 m threshold: “to ensure
        // that the robots can receive failure messages all the time”,
        // §4.2). Static nodes get the full range.
        let margin = if from.index() < self.sensors.len() {
            0.0
        } else {
            self.cfg.update_threshold
        };
        let s = &mut self.sensors[to.index()];
        let r = self.radio.medium().tx_range(to) - margin;
        if s.loc.distance_sq(loc) <= r * r {
            s.hear(from, loc, now);
        }
    }

    fn on_robot_hello(
        &mut self,
        now: SimTime,
        to: NodeId,
        src: NodeId,
        robot: NodeId,
        loc: Point,
        manager: Option<(NodeId, Point)>,
    ) {
        if to.index() >= self.sensors.len() {
            return;
        }
        self.hear_guarded(now, to, src, loc);
        if !self.sensors[to.index()].alive {
            return;
        }
        let ctx = CoordCtx {
            partition: self.partition.as_deref(),
            n_sensors: self.sensors.len(),
            n_robots: self.robots.len(),
            manager: self.manager.as_ref().map(|m| (m.id, m.loc)),
            update_threshold: self.cfg.update_threshold,
        };
        self.coord
            .on_robot_hello(&mut self.sensors[to.index()], robot, loc, manager, &ctx);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_robot_flood(
        &mut self,
        now: SimTime,
        to: NodeId,
        frame: &Frame<AppMsg>,
        robot: NodeId,
        loc: Point,
        seq: u32,
        subarea: u32,
        defunct: Option<NodeId>,
    ) {
        if to.index() >= self.sensors.len() || !self.sensors[to.index()].alive {
            return;
        }
        // Hearing the robot itself also refreshes the routing table.
        if frame.src == robot {
            self.hear_guarded(now, to, frame.src, loc);
        }
        if !self.sensors[to.index()].dedup.accept(robot, seq) {
            return; // relay at most once per (robot, seq) — §3.2
        }
        // Takeover floods name the broken-down peer: forget it before
        // weighing the announcer, so `myrobot` can never stick to a
        // dead robot that happens to be closer.
        if let Some(dead) = defunct {
            self.sensors[to.index()].forget_robot(dead);
            // Never leave a sensor robotless: if the defunct robot was
            // the only one it knew, the announcer itself is the fallback
            // (the scoped `accept_flood` below may not adopt it when the
            // sensor sits outside the flooded subarea).
            if self.sensors[to.index()].myrobot.is_none() {
                self.sensors[to.index()].myrobot = Some((robot, loc));
            }
        }
        let s_loc = self.sensors[to.index()].loc;
        let ctx = CoordCtx {
            partition: self.partition.as_deref(),
            n_sensors: self.sensors.len(),
            n_robots: self.robots.len(),
            manager: self.manager.as_ref().map(|m| (m.id, m.loc)),
            update_threshold: self.cfg.update_threshold,
        };
        let my_sub = self.sensor_subarea[to.index()];
        let mut relay = self.coord.accept_flood(
            &mut self.sensors[to.index()],
            robot,
            loc,
            subarea,
            my_sub,
            &ctx,
        );
        // §6 future-work optimisation: border-retransmit self-pruning —
        // a sensor deep inside the transmitter's coverage adds little
        // new area by relaying, so only the outer ring (beyond
        // `min_frac` of the *transmitter's* range) retransmits.
        if let Some(min_frac) = self.cfg.broadcast_prune {
            let from_loc = self.node_position(now, frame.src);
            let range = min_frac * self.radio.medium().tx_range(frame.src);
            if s_loc.distance_sq(from_loc) < range * range {
                relay = false;
            }
        }
        if relay {
            let msg = AppMsg::RobotFlood {
                robot,
                loc,
                seq,
                subarea,
                defunct,
            };
            let bytes = msg.wire_bytes();
            let relay_frame = Frame {
                src: to,
                dst: None,
                bytes,
                class: frame.class,
                payload: msg,
            };
            // Desynchronise the flood: without a random forwarding delay
            // every receiver of one broadcast contends in the same 620 µs
            // window and the relays collide en masse (the classic
            // broadcast-storm problem; flooding implementations jitter
            // exactly like this).
            let jitter =
                sampler::uniform_duration(&mut self.jitter_rng, SimDuration::from_millis(50));
            self.sched.schedule_after(
                jitter,
                Event::RelaySend {
                    frame: Box::new(relay_frame),
                },
            );
        }
    }

    /// A geo-routed message reached its destination.
    fn handle_final(&mut self, now: SimTime, at: NodeId, msg: AppMsg) {
        match msg {
            AppMsg::Report {
                failed,
                failed_loc,
                geo,
            } => {
                self.metrics.reports_delivered += 1;
                self.metrics.report_hops.push(geo.hops);
                if self.observing {
                    self.emit(TraceEvent::ReportDelivered {
                        t: now.as_secs_f64(),
                        manager: at,
                        failed,
                        hops: geo.hops,
                    });
                }
                if self.coord.dispatch_via_manager() {
                    self.manager_dispatch(now, failed, failed_loc);
                } else if let Some(r) = self.robot_index(at) {
                    self.robot_enqueue(now, r, failed, failed_loc);
                }
            }
            AppMsg::Request {
                failed,
                failed_loc,
                geo,
            } => {
                self.metrics.requests_delivered += 1;
                self.metrics.request_hops.push(geo.hops);
                if let Some(r) = self.robot_index(at) {
                    self.robot_enqueue(now, r, failed, failed_loc);
                }
            }
            AppMsg::RobotToManagerUpdate {
                robot,
                loc,
                queue_len,
                ..
            } => {
                let r = self.robot_index(robot);
                if let (Some(m), Some(r)) = (self.manager.as_mut(), r) {
                    m.robot_locs[r] = loc;
                    m.robot_queues[r] = queue_len;
                    // A talking robot is not a suspect.
                    m.suspect[r] = false;
                }
            }
            _ => {}
        }
    }

    /// The central manager received a failure report: forward it to the
    /// robot currently closest to the failure (§3.1).
    fn manager_dispatch(&mut self, now: SimTime, failed: NodeId, failed_loc: Point) {
        let retry_window = self.cfg.report_retry / 2;
        let faults_active = self.faults.is_some();
        let manager = self.manager.as_mut().expect("centralized manager exists");
        // Drop duplicate reports for a failure already being handled.
        if let Some(t) = manager.last_dispatch[failed.index()] {
            if now.saturating_duration_since(t) < retry_window {
                return;
            }
        }
        // With faults active a stalled dispatch is re-driven by the
        // timeout machinery, not by guardian retry reports.
        if faults_active && manager.outstanding.contains_key(&failed.as_u32()) {
            manager.last_dispatch[failed.index()] = Some(now);
            return;
        }
        self.dispatch_to_robot(now, failed, failed_loc, 1);
    }

    /// One dispatch attempt: pick a (non-suspect) robot and send the
    /// request. `attempt` ≥ 2 means a post-timeout re-dispatch.
    fn dispatch_to_robot(&mut self, now: SimTime, failed: NodeId, failed_loc: Point, attempt: u32) {
        let faults_active = self.faults.is_some();
        let manager = self.manager.as_mut().expect("centralized manager exists");
        manager.last_dispatch[failed.index()] = Some(now);
        let fleet = FleetView {
            robot_locs: &manager.robot_locs,
            robot_queues: &manager.robot_queues,
            suspect: Some(&manager.suspect),
        };
        let best_robot = self
            .coord
            .choose_dispatch_robot(&fleet, failed_loc, self.cfg.dispatch)
            .expect("manager algorithms choose a robot");
        if faults_active {
            manager.outstanding.insert(
                failed.as_u32(),
                OutstandingDispatch {
                    robot: best_robot,
                    since: now,
                    attempts: attempt,
                    failed_loc,
                },
            );
        }
        let robot_node = self.robots[best_robot].id;
        let robot_loc = manager.robot_locs[best_robot];
        let manager_id = manager.id;
        self.metrics.requests_sent += 1;
        if attempt >= 2 {
            self.metrics.faults.redispatches += 1;
        }
        // Injected link loss: the request dies en route; the timeout
        // re-drives it.
        let dropped = self
            .faults
            .as_mut()
            .is_some_and(|inj| inj.drop_message(FaultKind::DispatchLoss));
        if dropped {
            self.metrics.faults.dispatch_drops += 1;
            if self.observing {
                self.emit(TraceEvent::FaultInjected {
                    t: now.as_secs_f64(),
                    kind: FaultKind::DispatchLoss,
                    node: manager_id,
                });
            }
            return;
        }
        let msg = AppMsg::Request {
            failed,
            failed_loc,
            geo: GeoHeader::new(robot_node, robot_loc),
        };
        self.originate_geo(now, manager_id, msg, TrafficClass::RepairRequest);
    }

    /// Manager-side watchdog (runs on the manager's beacon clock):
    /// dispatches older than the plan's timeout mark their robot
    /// suspect and go to the next-closest non-suspect robot, up to the
    /// attempt budget.
    fn check_dispatch_timeouts(&mut self, now: SimTime) {
        let Some(inj) = self.faults.as_ref() else {
            return;
        };
        let timeout = inj.plan.dispatch_timeout;
        let max_attempts = inj.plan.max_dispatch_attempts;
        let Some(m) = self.manager.as_mut() else {
            return;
        };
        let expired: Vec<(u32, OutstandingDispatch)> = m
            .outstanding
            .iter()
            .filter(|(_, od)| now.saturating_duration_since(od.since) >= timeout)
            .map(|(&failed, &od)| (failed, od))
            .collect();
        for (failed, od) in expired {
            let m = self.manager.as_mut().expect("checked above");
            m.outstanding.remove(&failed);
            m.suspect[od.robot] = true;
            self.metrics.faults.dispatch_timeouts += 1;
            if self.observing {
                self.emit(TraceEvent::DispatchTimedOut {
                    t: now.as_secs_f64(),
                    failed: NodeId::new(failed),
                    attempt: od.attempts,
                });
            }
            if od.attempts >= max_attempts {
                self.metrics.faults.dispatches_abandoned += 1;
            } else {
                self.dispatch_to_robot(now, NodeId::new(failed), od.failed_loc, od.attempts + 1);
            }
        }
    }

    fn robot_enqueue(&mut self, now: SimTime, r: usize, failed: NodeId, failed_loc: Point) {
        match self.robot_pending[r].binary_search(&failed.as_u32()) {
            Ok(_) => return, // duplicate report for a queued failure
            Err(i) => self.robot_pending[r].insert(i, failed.as_u32()),
        }
        let task = ReplacementTask {
            failed,
            loc: failed_loc,
            dispatched_at: now,
        };
        let leg = self.robots[r].enqueue(task, now);
        if self.observing {
            self.emit(TraceEvent::Dispatched {
                t: now.as_secs_f64(),
                robot: self.robots[r].id,
                failed,
                departed: leg.is_some(),
            });
        }
        if let Some(leg) = leg {
            self.start_leg(r, leg);
        }
    }

    fn start_leg(&mut self, r: usize, leg: robonet_robot::motion::Leg) {
        self.robot_leg_seq[r] += 1;
        let seq = self.robot_leg_seq[r];
        if self.observing {
            self.emit(TraceEvent::RobotLegStarted {
                t: leg.start().as_secs_f64(),
                robot: self.robots[r].id,
                failed: self.robots[r]
                    .current_task()
                    .expect("departing robot has a task")
                    .failed,
                from: leg.from(),
                to: leg.to(),
            });
        }
        self.sched.schedule_at(
            leg.arrival(),
            Event::RobotArrive {
                robot: r as u32,
                leg: seq,
            },
        );
        for t in leg.update_times(self.cfg.update_threshold) {
            self.sched.schedule_at(
                t,
                Event::RobotUpdatePoint {
                    robot: r as u32,
                    leg: seq,
                },
            );
        }
    }

    fn on_robot_update_point(&mut self, now: SimTime, r: usize, leg: u64) {
        if self.robot_leg_seq[r] != leg {
            return; // stale (robot re-planned)
        }
        let loc = self.robots[r].position_at(now);
        self.radio.set_position(self.robots[r].id, loc);
        self.do_location_update(now, r, TrafficClass::LocationUpdate);
    }

    fn on_robot_arrive(&mut self, now: SimTime, r: usize, leg: u64) {
        if self.robot_leg_seq[r] != leg {
            return;
        }
        let travel = self.robots[r]
            .current_leg()
            .expect("arriving robot has a leg")
            .distance();
        let (task, next_leg) = self.robots[r].arrive(now);
        let robot_node = self.robots[r].id;
        self.radio.set_position(robot_node, task.loc);
        if let Ok(i) = self.robot_pending[r].binary_search(&task.failed.as_u32()) {
            self.robot_pending[r].remove(i);
        }
        // The repair completed: the manager's dispatch watchdog (if
        // any) stops waiting on it.
        if let Some(m) = self.manager.as_mut() {
            m.outstanding.remove(&task.failed.as_u32());
        }
        if self.observing {
            self.emit(TraceEvent::RobotLegEnded {
                t: now.as_secs_f64(),
                robot: robot_node,
                travel,
            });
        }

        let s = task.failed.index();
        if self.sensors[s].alive {
            self.metrics.spurious_replacements += 1;
        } else {
            // Install the replacement: same identity and location, fresh
            // protocol state, fresh exponential lifetime (§2(a), §2(d)).
            self.sensors[s].reset_for_replacement();
            let ctx = CoordCtx {
                partition: self.partition.as_deref(),
                n_sensors: self.sensors.len(),
                n_robots: self.robots.len(),
                manager: self.manager.as_ref().map(|m| (m.id, m.loc)),
                update_threshold: self.cfg.update_threshold,
            };
            self.coord.seed_replacement(&mut self.sensors[s], &ctx);
            // With breakdowns in play the installer may be a takeover
            // robot from another subarea whose scoped floods this sensor
            // will never match; adopt it directly so the replacement is
            // never robotless. Fault-free the next flood seeds `myrobot`
            // before it is needed, so this stays behind the fault gate.
            if self.faults.is_some()
                && self.coord.uses_myrobot()
                && self.sensors[s].myrobot.is_none()
            {
                self.sensors[s].myrobot = Some((robot_node, task.loc));
            }
            self.radio.set_alive(task.failed, true);
            self.incarnation[s] += 1;
            let fail_at = scale_failure_time(
                now,
                self.failure_proc.sample_failure_at(now),
                self.lifetime_factor.get(s).copied().unwrap_or(1.0),
            );
            if fail_at <= self.sched.horizon() {
                self.sched.schedule_at(
                    fail_at,
                    Event::Fail {
                        sensor: s as u32,
                        incarnation: self.incarnation[s],
                    },
                );
            }
            self.metrics.replacements += 1;
            self.robot_tasks_done[r] += 1;
            self.metrics.travel_per_task.push(travel);
            if self.observing {
                self.emit(TraceEvent::Replaced {
                    t: now.as_secs_f64(),
                    robot: robot_node,
                    sensor: task.failed,
                    travel,
                    loc: task.loc,
                });
            }
            self.metrics
                .repair_delay
                .push(now.duration_since(task.dispatched_at).as_secs_f64());
            // The new node announces itself so neighbours rebuild their
            // tables (§4.2(a)).
            let hello = AppMsg::Beacon {
                loc: self.sensors[s].loc,
            };
            self.radio_send(
                now,
                Frame {
                    src: task.failed,
                    dst: None,
                    bytes: hello.wire_bytes(),
                    class: TrafficClass::Replacement,
                    payload: hello,
                },
            );
        }

        // Arrival is a moved-by-threshold point too: update location and
        // introduce the robot (and the manager) to the neighbourhood.
        self.do_location_update(now, r, TrafficClass::LocationUpdate);

        if let Some(leg) = next_leg {
            self.start_leg(r, leg);
        }
    }

    // --- Injected robot faults --------------------------------------------

    /// An injected breakdown fires: the robot either degrades to
    /// `slow_factor` speed or dies on the spot (silent radio, current
    /// task pushed back onto its queue) until an optional in-place
    /// repair.
    fn on_robot_breakdown(&mut self, now: SimTime, r: usize) {
        if self.robot_down[r] {
            return;
        }
        let slowdown = self
            .faults
            .as_mut()
            .expect("breakdown events imply faults")
            .breakdown_is_slowdown();
        let robot_node = self.robots[r].id;
        if slowdown {
            self.metrics.faults.robot_slowdowns += 1;
            self.robot_slowed[r] = true;
            let factor = self
                .faults
                .as_ref()
                .expect("checked above")
                .plan
                .slow_factor;
            self.replan_at_speed(now, r, self.cfg.robot_speed * factor);
            if self.observing {
                self.emit(TraceEvent::FaultInjected {
                    t: now.as_secs_f64(),
                    kind: FaultKind::Slowdown,
                    node: robot_node,
                });
            }
            // A slowed robot keeps breaking down on the same clock.
            self.schedule_next_breakdown(r);
        } else {
            self.kill_robot(now, r);
            let repair = self
                .faults
                .as_ref()
                .expect("checked above")
                .plan
                .breakdown_repair;
            if let Some(repair) = repair {
                self.sched
                    .schedule_at(now + repair, Event::RobotRepair { robot: r as u32 });
            }
        }
    }

    /// Takes a robot out of service on the spot: silent radio, current
    /// leg interrupted, in-flight motion events gone stale. Shared by
    /// the probabilistic breakdown path (which may schedule a repair)
    /// and attrition waves (which never do).
    fn kill_robot(&mut self, now: SimTime, r: usize) {
        self.metrics.faults.robot_breakdowns += 1;
        self.robot_down[r] = true;
        self.robots[r].interrupt(now);
        self.robot_leg_seq[r] += 1; // stale in-flight arrive/update events
        let robot_node = self.robots[r].id;
        let loc = self.robots[r].position_at(now);
        self.radio.set_position(robot_node, loc);
        self.radio.set_alive(robot_node, false);
        if self.observing {
            self.emit(TraceEvent::RobotDied {
                t: now.as_secs_f64(),
                robot: robot_node,
            });
        }
    }

    /// In-place repair completes: the robot rejoins, re-announces, and
    /// resumes its queued work.
    fn on_robot_repair(&mut self, now: SimTime, r: usize) {
        if !self.robot_down[r] {
            return;
        }
        self.robot_down[r] = false;
        self.takeover_done[r] = false;
        // Reset peers' suspicion so the re-announcement isn't raced by a
        // stale takeover declaration.
        for table in &mut self.peer_last_heard {
            table[r] = None;
        }
        self.metrics.faults.robot_repairs += 1;
        let robot_node = self.robots[r].id;
        self.radio.set_alive(robot_node, true);
        if self.observing {
            self.emit(TraceEvent::RobotRepaired {
                t: now.as_secs_f64(),
                robot: robot_node,
            });
        }
        // Re-announce so sensors (and the manager) re-adopt the robot.
        self.do_location_update(now, r, TrafficClass::LocationUpdate);
        if let Some(leg) = self.robots[r].resume(now) {
            self.start_leg(r, leg);
        }
        self.schedule_next_breakdown(r);
    }

    fn schedule_next_breakdown(&mut self, r: usize) {
        let delay = self
            .faults
            .as_mut()
            .and_then(FaultInjector::next_breakdown_delay);
        if let Some(delay) = delay {
            self.sched
                .schedule_after(delay, Event::RobotBreakdown { robot: r as u32 });
        }
    }

    /// Interrupts any current leg, changes speed, and resumes — the
    /// replanned leg (new speed, partial travel credited) replaces the
    /// in-flight one.
    fn replan_at_speed(&mut self, now: SimTime, r: usize, speed: f64) {
        let was_moving = self.robots[r].interrupt(now);
        self.robots[r].set_speed(speed);
        if was_moving {
            let loc = self.robots[r].position_at(now);
            self.radio.set_position(self.robots[r].id, loc);
            if let Some(leg) = self.robots[r].resume(now) {
                self.start_leg(r, leg); // bumps the leg seq: old events go stale
            }
        }
    }

    /// A robot checks its peer heartbeats (its own beacon clock): a
    /// peer silent past the plan's window is presumed dead, and this
    /// robot floods a takeover announcement scoped to the dead peer's
    /// subarea (fixed) or unscoped (dynamic), naming it `defunct` so
    /// sensors drop it. First detector wins; repair resets the flag.
    fn check_peer_takeover(&mut self, now: SimTime, r: usize) {
        if self.peer_last_heard.is_empty() {
            return; // breakdowns not in the plan
        }
        let periods = self
            .faults
            .as_ref()
            .expect("peer tables imply faults")
            .plan
            .peer_timeout_periods;
        let timeout =
            SimDuration::from_secs(self.cfg.beacon_period.as_secs_f64() * f64::from(periods));
        for p in 0..self.robots.len() {
            if p == r || self.takeover_done[p] {
                continue;
            }
            let Some(last) = self.peer_last_heard[r][p] else {
                continue; // never heard: out of range, not diagnosable
            };
            if now.saturating_duration_since(last) < timeout {
                continue;
            }
            // Only flood-announcing algorithms take over peer duties;
            // the centralized manager handles exclusion itself.
            let Announcement::Flood { subarea } = self.coord.location_announcement(p) else {
                continue;
            };
            self.takeover_done[p] = true;
            self.metrics.faults.takeovers += 1;
            let dead = self.robots[p].id;
            let robot_node = self.robots[r].id;
            let loc = self.robots[r].position_at(now);
            if self.observing {
                self.emit(TraceEvent::TakeoverAssumed {
                    t: now.as_secs_f64(),
                    robot: robot_node,
                    dead,
                    subarea,
                });
            }
            let seq = self.robots[r].next_seq();
            let msg = AppMsg::RobotFlood {
                robot: robot_node,
                loc,
                seq,
                subarea,
                defunct: Some(dead),
            };
            let bytes = msg.wire_bytes();
            self.radio_send(
                now,
                Frame {
                    src: robot_node,
                    dst: None,
                    bytes,
                    class: TrafficClass::LocationUpdate,
                    payload: msg,
                },
            );
        }
    }

    /// Broadcast/unicast the robot's current location per the algorithm
    /// (§3.1–3.3). `class` is `Init` for the initialization announcement
    /// and `LocationUpdate` during operation (the Figure 4 metric).
    fn do_location_update(&mut self, now: SimTime, r: usize, class: TrafficClass) {
        let loc = self.robots[r].position_at(now);
        let robot_node = self.robots[r].id;
        self.radio.set_position(robot_node, loc);
        // Injected loss on operational updates only (Init announcements
        // are part of the paper's assumed-reliable setup phase). The
        // robot believes it updated, so the cadence is unchanged.
        let dropped = class == TrafficClass::LocationUpdate
            && self
                .faults
                .as_mut()
                .is_some_and(|inj| inj.drop_message(FaultKind::UpdateLoss));
        if dropped {
            self.metrics.faults.update_drops += 1;
            if self.observing {
                self.emit(TraceEvent::FaultInjected {
                    t: now.as_secs_f64(),
                    kind: FaultKind::UpdateLoss,
                    node: robot_node,
                });
            }
            self.robots[r].last_update_loc = loc;
            return;
        }
        let seq = self.robots[r].next_seq();
        match self.coord.location_announcement(r) {
            Announcement::ManagerUnicast => {
                let m = self.manager.as_ref().expect("manager exists");
                let (m_id, m_loc) = (m.id, m.loc);
                // Unicast to the manager via geographic routing...
                let queue_len = self.robots[r].queue_len() as u32
                    + u32::from(self.robots[r].current_task().is_some());
                let msg = AppMsg::RobotToManagerUpdate {
                    robot: robot_node,
                    loc,
                    queue_len,
                    geo: GeoHeader::new(m_id, m_loc),
                };
                self.originate_geo(now, robot_node, msg, class);
                // ... plus a one-hop broadcast so nearby sensors can
                // deliver chasing repair requests (§3.1).
                let hello = AppMsg::RobotHello {
                    robot: robot_node,
                    loc,
                    manager: Some((m_id, m_loc)),
                };
                let bytes = hello.wire_bytes();
                self.radio_send(
                    now,
                    Frame {
                        src: robot_node,
                        dst: None,
                        bytes,
                        class,
                        payload: hello,
                    },
                );
            }
            Announcement::Flood { subarea } => {
                if self.observing && class == TrafficClass::LocationUpdate {
                    self.emit(TraceEvent::LocUpdateFlooded {
                        t: now.as_secs_f64(),
                        robot: robot_node,
                        seq: u64::from(seq),
                    });
                }
                let msg = AppMsg::RobotFlood {
                    robot: robot_node,
                    loc,
                    seq,
                    subarea,
                    defunct: None,
                };
                let bytes = msg.wire_bytes();
                self.radio_send(
                    now,
                    Frame {
                        src: robot_node,
                        dst: None,
                        bytes,
                        class,
                        payload: msg,
                    },
                );
            }
        }
        self.robots[r].last_update_loc = loc;
    }

    // --- MAC failure recovery -------------------------------------------------

    /// A unicast frame exhausted its retries: for geo-routed traffic,
    /// evict the unreachable next hop (GPSR neighbour blacklisting) and
    /// re-route from the current holder.
    fn on_tx_failed(&mut self, now: SimTime, src: NodeId, frame: &Frame<AppMsg>) {
        if frame.payload.geo().is_none() {
            return; // confirms/hellos are best-effort
        }
        let Some(next) = frame.dst else { return };
        if src.index() < self.sensors.len() {
            self.sensors[src.index()].neighbors.remove(next);
        }
        if !self.radio.medium().is_alive(src) {
            self.metrics.packets_dropped.record(DropReason::MacGiveUp);
            if self.observing {
                self.emit(TraceEvent::PacketDropped {
                    t: now.as_secs_f64(),
                    at: src,
                    reason: DropReason::MacGiveUp,
                });
            }
            return;
        }
        self.route_and_send(now, src, frame.payload.clone(), frame.class, None);
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("algorithm", &self.cfg.algorithm)
            .field("sensors", &self.sensors.len())
            .field("robots", &self.robots.len())
            .field("now", &self.sched.now())
            .finish()
    }
}

/// Runs several seeds of the same scenario and merges the summaries by
/// averaging (used by the figure harness; the paper reports averages
/// over its simulation runs).
///
/// Seeds fan across the work-stealing pool; outcomes come back in seed
/// order and are identical to a sequential run (each seed is a pure
/// function of its configuration).
///
/// # Panics
///
/// Panics if any seed's simulation panicked.
pub fn run_seeds(cfg: &ScenarioConfig, seeds: &[u64]) -> Vec<Outcome> {
    robonet_des::pool::scatter_map(seeds, robonet_des::pool::resolve_jobs(None), |_, &seed| {
        Simulation::run(cfg.clone().with_seed(seed))
    })
    .into_iter()
    .map(|r| match r {
        Ok(outcome) => outcome,
        Err(panic) => panic!("seed cell panicked: {panic}"),
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, PartitionKind};

    /// A fast small scenario: 4 robots, 200 sensors, 1/16 time scale
    /// (4000 s sim, 1000 s lifetimes → ~4 failures per sensor slot,
    /// robot utilisation preserved by speed scaling).
    fn small(algorithm: Algorithm) -> ScenarioConfig {
        ScenarioConfig::paper(2, algorithm)
            .with_seed(11)
            .scaled(16.0)
    }

    fn check_common(outcome: &Outcome) {
        let m = &outcome.metrics;
        assert!(
            m.failures_occurred > 100,
            "failures: {}",
            m.failures_occurred
        );
        // The overwhelming majority of failures get repaired.
        let repaired = m.replacements as f64 / m.failures_occurred as f64;
        assert!(repaired > 0.85, "repair ratio {repaired}");
        // Reports arrive essentially always (paper: 100% delivery).
        let s = outcome.metrics.summary();
        assert!(
            s.report_delivery_ratio > 0.95,
            "delivery {}",
            s.report_delivery_ratio
        );
        // Average traveling distance per failure is O(100 m) for the
        // 200 m-per-robot geometry.
        assert!(
            s.avg_travel_per_failure > 20.0 && s.avg_travel_per_failure < 250.0,
            "travel {}",
            s.avg_travel_per_failure
        );
    }

    #[test]
    #[ignore = "diagnostic dump"]
    fn debug_dump() {
        let scale: f64 = std::env::var("DUMP_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32.0);
        let k: usize = std::env::var("DUMP_K")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2);
        for alg in [
            Algorithm::Centralized,
            Algorithm::Fixed(PartitionKind::Square),
            Algorithm::Dynamic,
        ] {
            let o = Simulation::run(ScenarioConfig::paper(k, alg).with_seed(11).scaled(scale));
            let m = &o.metrics;
            println!(
                "{alg}: failures={} reports_sent={} reports_del={} req_sent={} req_del={} \
                 replaced={} spurious={} dropped={} events={}",
                m.failures_occurred,
                m.reports_sent,
                m.reports_delivered,
                m.requests_sent,
                m.requests_delivered,
                m.replacements,
                m.spurious_replacements,
                m.packets_dropped,
                o.events_processed
            );
            println!("{}", m.tx);
            let max_hops = m.report_hops.iter().max().copied().unwrap_or(0);
            println!(
                "report hops: mean={:?} max={max_hops} n={}",
                crate::metrics::mean_u32(&m.report_hops),
                m.report_hops.len()
            );
            println!(
                "travel mean={:?} repair delay mean={:?}",
                crate::metrics::mean_f64(&m.travel_per_task),
                crate::metrics::mean_f64(&m.repair_delay)
            );
        }
    }

    #[test]
    fn centralized_small_run() {
        let outcome = Simulation::run(small(Algorithm::Centralized));
        check_common(&outcome);
        let s = outcome.metrics.summary();
        assert!(s.avg_request_hops.is_some(), "centralized sends requests");
        assert!(
            outcome.metrics.requests_delivered > 0,
            "requests: {}",
            outcome.metrics.requests_delivered
        );
    }

    #[test]
    fn fixed_small_run() {
        let outcome = Simulation::run(small(Algorithm::Fixed(PartitionKind::Square)));
        check_common(&outcome);
        let s = outcome.metrics.summary();
        assert_eq!(s.avg_request_hops, None);
        // Distributed reports are short-range: a few hops on average
        // (time-compressed runs inflate this slightly because sped-up
        // robots force more next-hop evictions mid-route).
        assert!(s.avg_report_hops < 5.0, "report hops {}", s.avg_report_hops);
        // Fixed floods the subarea on every 20 m of motion: far more
        // location-update transmissions than centralized.
        assert!(
            s.loc_update_tx_per_failure > 30.0,
            "updates {}",
            s.loc_update_tx_per_failure
        );
    }

    #[test]
    fn dynamic_small_run() {
        let outcome = Simulation::run(small(Algorithm::Dynamic));
        check_common(&outcome);
        let s = outcome.metrics.summary();
        assert!(s.avg_report_hops < 4.0);
        assert!(
            s.myrobot_accuracy > 0.8,
            "dynamic Voronoi maintenance accuracy {}",
            s.myrobot_accuracy
        );
    }

    #[test]
    fn trace_records_the_repair_story() {
        let mut cfg = small(Algorithm::Dynamic);
        cfg.trace_capacity = 10_000;
        let o = Simulation::run(cfg);
        let trace = &o.trace;
        assert!(!trace.is_empty());
        // Every replacement leaves a Replaced event (capacity allowing).
        let replaced = trace
            .events()
            .filter(|e| matches!(e, crate::trace::TraceEvent::Replaced { .. }))
            .count();
        assert!(replaced > 0);
        assert!(replaced as u64 <= o.metrics.replacements);
        // Events are time-ordered.
        let times: Vec<f64> = trace.events().map(|e| e.time()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "trace out of order");
        // A replaced sensor's lifecycle contains failure before repair.
        let replaced_sensor = trace.events().find_map(|e| match e {
            crate::trace::TraceEvent::Replaced { sensor, .. } => Some(*sensor),
            _ => None,
        });
        if let Some(sensor) = replaced_sensor {
            let life = trace.lifecycle_of(sensor);
            assert!(life.len() >= 2, "lifecycle of {sensor}: {life:?}");
        }
    }

    #[test]
    fn tracing_does_not_change_results() {
        let plain = Simulation::run(small(Algorithm::Centralized));
        let mut cfg = small(Algorithm::Centralized);
        cfg.trace_capacity = 500;
        let traced = Simulation::run(cfg);
        assert_eq!(
            plain.metrics.failures_occurred,
            traced.metrics.failures_occurred
        );
        assert_eq!(
            plain.metrics.travel_per_task,
            traced.metrics.travel_per_task
        );
        assert_eq!(plain.events_processed, traced.events_processed);
        assert_eq!(traced.trace.len(), 500, "ring buffer filled to capacity");
        assert!(traced.trace.dropped() > 0);
    }

    #[test]
    fn smooth_edge_fading_degrades_gracefully() {
        let mut cfg = small(Algorithm::Dynamic);
        cfg.fading = robonet_radio::Fading::SmoothEdge { inner: 0.7 };
        let o = Simulation::run(cfg);
        let s = o.metrics.summary();
        // Lossy edges cost retransmissions, not correctness: the system
        // still detects and repairs the bulk of failures.
        assert!(
            s.replacements as f64 > 0.75 * s.failures_occurred as f64,
            "repaired {}/{} under edge fading",
            s.replacements,
            s.failures_occurred
        );
        let clean = Simulation::run(small(Algorithm::Dynamic)).metrics.summary();
        assert!(
            s.avg_report_hops >= clean.avg_report_hops * 0.9,
            "fading cannot shorten paths: {} vs {}",
            s.avg_report_hops,
            clean.avg_report_hops
        );
    }

    #[test]
    fn coverage_sampling_produces_timeline() {
        let mut cfg = small(Algorithm::Dynamic);
        cfg.coverage_sample = Some(crate::config::CoverageSampling {
            period: robonet_des::SimDuration::from_secs(200.0),
            sensing_range: 63.0,
            resolution: 40,
        });
        let o = Simulation::run(cfg);
        let tl = &o.metrics.coverage_timeline;
        assert!(tl.len() >= 15, "timeline samples: {}", tl.len());
        // Coverage stays high throughout thanks to replacement; dead
        // counts fluctuate but stay small.
        for &(t, cov, dead) in tl {
            assert!(t > 0.0);
            assert!(cov > 0.75, "coverage collapsed to {cov} at {t}s");
            // Compressed runs have an elevated orphan rate (guardian and
            // guardee dying within one detection window), so permanently
            // dead nodes accumulate faster than at paper scale; the
            // bound is correspondingly loose.
            assert!((dead as usize) < o.config.n_sensors() / 2);
        }
    }

    #[test]
    fn nearest_idle_dispatch_reduces_delay_under_load() {
        // Load the fleet (short lifetimes) and compare dispatch rules.
        let mut base = small(Algorithm::Centralized);
        base.mean_lifetime = robonet_des::SimDuration::from_secs(300.0);
        let mut idle = base.clone();
        idle.dispatch = crate::config::DispatchPolicy::NearestIdle;
        let s_near = Simulation::run(base).metrics.summary();
        let s_idle = Simulation::run(idle).metrics.summary();
        // The policies genuinely differ and NearestIdle does not lose on
        // repair throughput.
        assert!(
            s_idle.replacements as f64 >= 0.9 * s_near.replacements as f64,
            "idle-dispatch throughput {} vs nearest {}",
            s_idle.replacements,
            s_near.replacements
        );
        // NearestIdle pays extra travel for its idle preference (it
        // passes over the closest-but-busy robot). Whether that buys
        // shorter delays depends on load and the staleness of the queue
        // reports — the ablation bench quantifies it; here we only pin
        // the travel direction and overall sanity.
        assert!(
            s_idle.avg_travel_per_failure >= s_near.avg_travel_per_failure * 0.98,
            "idle travel {} vs nearest {}",
            s_idle.avg_travel_per_failure,
            s_near.avg_travel_per_failure
        );
        assert!(s_idle.avg_repair_delay < s_near.avg_repair_delay * 2.0);
    }

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> ConvexPolygon {
        ConvexPolygon::new(vec![
            Point::new(x0, y0),
            Point::new(x1, y0),
            Point::new(x1, y1),
            Point::new(x0, y1),
        ])
        .expect("CCW rectangle")
    }

    /// `small()` with lifetimes long enough that the fleet has headroom:
    /// failure counts then track the failure *process* rather than robot
    /// throughput, which is what the timeline tests need to observe.
    fn small_relaxed(alg: Algorithm) -> ScenarioConfig {
        let mut cfg = small(alg);
        cfg.mean_lifetime = SimDuration::from_secs(2.0 * cfg.sim_time.as_secs_f64());
        cfg
    }

    #[test]
    fn blackout_kills_the_region_and_recovery_follows() {
        use crate::fault::{FaultPlan, TimedFault};
        let base = Simulation::run(small_relaxed(Algorithm::Dynamic)).metrics;
        let mut cfg = small_relaxed(Algorithm::Dynamic);
        let half = cfg.sim_time.as_secs_f64() / 2.0;
        let side = cfg.side();
        cfg.faults = Some(FaultPlan {
            timeline: vec![TimedFault::Blackout {
                at: SimDuration::from_secs(half),
                region: rect(0.0, 0.0, side / 2.0, side / 2.0),
            }],
            ..FaultPlan::default()
        });
        let o = Simulation::run(cfg);
        // A quadrant blackout at half-time adds roughly a quarter of the
        // population in simultaneous failures.
        assert!(
            o.metrics.failures_occurred > base.failures_occurred + 30,
            "blackout failures {} vs base {}",
            o.metrics.failures_occurred,
            base.failures_occurred
        );
        // The fleet digs itself out: most failures still get repaired.
        let repaired = o.metrics.replacements as f64 / o.metrics.failures_occurred as f64;
        assert!(repaired > 0.6, "repair ratio {repaired} after blackout");
        assert_eq!(o.metrics.counters.counter("fault", "timeline_events"), 1);
    }

    #[test]
    fn attrition_wave_is_permanent_and_triggers_takeover() {
        use crate::fault::{FaultPlan, TimedFault};
        let mut cfg = small(Algorithm::Dynamic);
        cfg.faults = Some(FaultPlan {
            // Repairs configured but attrition must ignore them.
            breakdown_repair: Some(SimDuration::from_secs(10.0)),
            timeline: vec![TimedFault::Attrition {
                at: SimDuration::from_secs(cfg.sim_time.as_secs_f64() / 4.0),
                robots: 2,
            }],
            ..FaultPlan::default()
        });
        let o = Simulation::run(cfg);
        assert_eq!(o.metrics.faults.robot_breakdowns, 2);
        assert_eq!(
            o.metrics.faults.robot_repairs, 0,
            "attrition deaths never repair"
        );
        assert!(
            o.metrics.faults.takeovers >= 1,
            "surviving peers take over: {}",
            o.metrics.faults.takeovers
        );
        // Half the fleet still repairs the bulk of failures.
        let repaired = o.metrics.replacements as f64 / o.metrics.failures_occurred as f64;
        assert!(repaired > 0.6, "repair ratio {repaired} after attrition");
    }

    #[test]
    fn partition_drops_cross_frames_then_heals() {
        use crate::fault::{FaultPlan, TimedFault};
        let mut cfg = small(Algorithm::Dynamic);
        let side = cfg.side();
        let t = cfg.sim_time.as_secs_f64();
        cfg.faults = Some(FaultPlan {
            timeline: vec![TimedFault::Partition {
                from: SimDuration::from_secs(t / 4.0),
                until: SimDuration::from_secs(t / 2.0),
                a: rect(0.0, 0.0, side / 2.0, side),
                b: rect(side / 2.0, 0.0, side, side),
            }],
            ..FaultPlan::default()
        });
        let o = Simulation::run(cfg);
        let drops = o.metrics.counters.counter("fault", "partition_drops");
        assert!(drops > 0, "cross-partition frames must die");
        // After healing, the system recovers most failures overall.
        let repaired = o.metrics.replacements as f64 / o.metrics.failures_occurred as f64;
        assert!(repaired > 0.6, "repair ratio {repaired} across partition");
    }

    #[test]
    fn loss_rate_event_switches_probabilities_mid_run() {
        use crate::fault::{FaultPlan, TimedFault};
        let mut cfg = small(Algorithm::Dynamic);
        cfg.faults = Some(FaultPlan {
            timeline: vec![TimedFault::LossRate {
                at: SimDuration::from_secs(cfg.sim_time.as_secs_f64() / 2.0),
                report: 0.5,
                dispatch: 0.0,
                update: 0.0,
            }],
            ..FaultPlan::default()
        });
        let o = Simulation::run(cfg);
        assert!(
            o.metrics.faults.report_drops > 0,
            "second-half loss must drop reports"
        );
        assert!(
            o.metrics.faults.report_retries > 0,
            "retry machinery re-drives dropped reports"
        );
    }

    #[test]
    fn dense_region_attracts_deployment() {
        use crate::config::DeployRegion;
        let mut cfg = small(Algorithm::Dynamic);
        let side = cfg.side();
        let core = rect(side * 0.375, side * 0.375, side * 0.625, side * 0.625);
        cfg.regions.push(DeployRegion {
            poly: core.clone(),
            density: 6.0,
            mean_lifetime: None,
        });
        let dep = field_deployment(&cfg);
        let inside = dep.sensor_pos.iter().filter(|&&p| core.contains(p)).count();
        // The core covers 1/16 of the field; at density 6 it should hold
        // ~6/21 ≈ 29% of sensors instead of the uniform ~6%.
        let frac = inside as f64 / dep.sensor_pos.len() as f64;
        assert!(
            frac > 0.15,
            "dense core holds {frac:.2} of sensors (expected ~0.29)"
        );
        assert!(
            dep.sensor_pos.iter().all(|&p| cfg.bounds().contains(p)),
            "weighted deployment stays inside the field"
        );
        // And the run still works end to end.
        let o = Simulation::run(cfg);
        assert!(o.metrics.replacements > 0);
    }

    #[test]
    fn region_lifetime_override_shifts_failures() {
        use crate::config::DeployRegion;
        let mut cfg = small_relaxed(Algorithm::Dynamic);
        let side = cfg.side();
        // Sensors in the west half die 4x as fast.
        cfg.regions.push(DeployRegion {
            poly: rect(0.0, 0.0, side / 2.0, side),
            density: 1.0,
            mean_lifetime: Some(SimDuration::from_secs(
                cfg.mean_lifetime.as_secs_f64() / 4.0,
            )),
        });
        let o = Simulation::run(cfg.clone());
        let base = Simulation::run(small_relaxed(Algorithm::Dynamic)).metrics;
        assert!(
            o.metrics.failures_occurred as f64 > 1.5 * base.failures_occurred as f64,
            "short-lived region must raise failures: {} vs {}",
            o.metrics.failures_occurred,
            base.failures_occurred
        );
    }

    #[test]
    fn empty_timeline_plan_is_identical_to_no_faults() {
        use crate::fault::FaultPlan;
        let plain = Simulation::run(small(Algorithm::Dynamic));
        let mut cfg = small(Algorithm::Dynamic);
        cfg.faults = Some(FaultPlan::default()); // inert: empty timeline
        let with_plan = Simulation::run(cfg);
        assert_eq!(
            plain.metrics.travel_per_task,
            with_plan.metrics.travel_per_task
        );
        assert_eq!(plain.events_processed, with_plan.events_processed);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let a = Simulation::run(small(Algorithm::Dynamic));
        let b = Simulation::run(small(Algorithm::Dynamic));
        assert_eq!(a.metrics.failures_occurred, b.metrics.failures_occurred);
        assert_eq!(a.metrics.replacements, b.metrics.replacements);
        assert_eq!(a.metrics.travel_per_task, b.metrics.travel_per_task);
        assert_eq!(a.metrics.report_hops, b.metrics.report_hops);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::run(small(Algorithm::Dynamic));
        let b = Simulation::run(small(Algorithm::Dynamic).with_seed(12));
        assert_ne!(a.metrics.travel_per_task, b.metrics.travel_per_task);
    }
}
