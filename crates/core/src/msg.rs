//! Application-layer messages.
//!
//! These are the payloads carried by `robonet-radio` frames. Geo-routed
//! messages embed a [`GeoHeader`] that intermediate nodes update hop by
//! hop (paper §4.2: the destination's location travels in an IP option
//! header).

use robonet_des::NodeId;
use robonet_geom::Point;
use robonet_net::GeoHeader;

/// An application message.
#[derive(Debug, Clone, PartialEq)]
pub enum AppMsg {
    /// Periodic one-hop beacon carrying the sender's location — failure
    /// detection and neighbour-table maintenance.
    Beacon {
        /// Sender's location.
        loc: Point,
    },
    /// One-hop unicast from a sensor to the neighbour it picked as its
    /// guardian, establishing the guardee relationship.
    GuardianConfirm,
    /// A failure report travelling from the detecting guardian to a
    /// manager (the central manager, or the responsible robot).
    Report {
        /// The failed sensor.
        failed: NodeId,
        /// Where it is.
        failed_loc: Point,
        /// Multihop routing state.
        geo: GeoHeader,
    },
    /// A replacement request forwarded by the central manager to the
    /// chosen robot (centralized algorithm only).
    Request {
        /// The failed sensor.
        failed: NodeId,
        /// Where it is.
        failed_loc: Point,
        /// Multihop routing state.
        geo: GeoHeader,
    },
    /// A moving robot's location update unicast to the central manager.
    RobotToManagerUpdate {
        /// The reporting robot.
        robot: NodeId,
        /// Its current location.
        loc: Point,
        /// Outstanding replacement tasks (current leg included) — lets
        /// the manager's `NearestIdle` dispatch extension prefer idle
        /// robots.
        queue_len: u32,
        /// Multihop routing state.
        geo: GeoHeader,
    },
    /// A robot location update flooded to sensors (fixed and dynamic
    /// algorithms). Relay scope depends on the algorithm.
    RobotFlood {
        /// The originating robot.
        robot: NodeId,
        /// Its current location.
        loc: Point,
        /// Flood sequence number (deduplicated per robot).
        seq: u32,
        /// The robot's subarea index — relays in the fixed algorithm are
        /// restricted to sensors of this subarea. `u32::MAX` in the
        /// dynamic algorithm (no fixed borders).
        subarea: u32,
        /// A peer robot this announcement declares broken down
        /// (takeover floods only): receiving sensors forget it before
        /// considering the announcer. `None` in ordinary location
        /// updates, so fault-free floods are unchanged on the wire.
        defunct: Option<NodeId>,
    },
    /// One-hop robot announcement (on arrival/installation, and
    /// alongside centralized location updates): lets nearby sensors
    /// learn the robot's exact position, and tells a freshly installed
    /// node who the manager is.
    RobotHello {
        /// The announcing robot.
        robot: NodeId,
        /// Its location.
        loc: Point,
        /// Manager identity and location (centralized algorithm).
        manager: Option<(NodeId, Point)>,
    },
}

impl AppMsg {
    /// Nominal over-the-air size in bytes (header + payload), used for
    /// air-time computation.
    pub fn wire_bytes(&self) -> u32 {
        match self {
            AppMsg::Beacon { .. } => 32,
            AppMsg::GuardianConfirm => 28,
            AppMsg::Report { .. } | AppMsg::Request { .. } => 64,
            AppMsg::RobotToManagerUpdate { .. } => 56,
            AppMsg::RobotFlood { .. } => 48,
            AppMsg::RobotHello { .. } => 48,
        }
    }

    /// The embedded routing header, if this is a geo-routed unicast.
    pub fn geo_mut(&mut self) -> Option<&mut GeoHeader> {
        match self {
            AppMsg::Report { geo, .. }
            | AppMsg::Request { geo, .. }
            | AppMsg::RobotToManagerUpdate { geo, .. } => Some(geo),
            _ => None,
        }
    }

    /// The embedded routing header, if this is a geo-routed unicast.
    pub fn geo(&self) -> Option<&GeoHeader> {
        match self {
            AppMsg::Report { geo, .. }
            | AppMsg::Request { geo, .. }
            | AppMsg::RobotToManagerUpdate { geo, .. } => Some(geo),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_accessors_match_variants() {
        let mut report = AppMsg::Report {
            failed: NodeId::new(1),
            failed_loc: Point::ZERO,
            geo: GeoHeader::new(NodeId::new(9), Point::new(5.0, 5.0)),
        };
        assert!(report.geo().is_some());
        assert!(report.geo_mut().is_some());
        let mut beacon = AppMsg::Beacon { loc: Point::ZERO };
        assert!(beacon.geo().is_none());
        assert!(beacon.geo_mut().is_none());
    }

    #[test]
    fn wire_sizes_nonzero_and_ordered() {
        let beacon = AppMsg::Beacon { loc: Point::ZERO };
        let report = AppMsg::Report {
            failed: NodeId::new(1),
            failed_loc: Point::ZERO,
            geo: GeoHeader::new(NodeId::new(9), Point::ZERO),
        };
        assert!(beacon.wire_bytes() > 0);
        assert!(report.wire_bytes() > beacon.wire_bytes());
    }
}
