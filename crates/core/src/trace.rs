//! Structured event tracing.
//!
//! A bounded log of the *protocol-level* story of a run — failures,
//! detections, dispatches, replacements — for debugging coordination
//! behaviour and for storyline output in tools. Disabled by default
//! (capacity 0) so figure sweeps pay nothing.

use std::collections::VecDeque;

use robonet_des::NodeId;
use robonet_geom::Point;

/// Why a packet never reached its destination.
///
/// Extends the network layer's routing-only reasons with the MAC-level
/// give-up (retries exhausted), so drop accounting covers every loss
/// site in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Hop budget exhausted (stale locations or a perimeter loop).
    TtlExpired,
    /// A node on the path had no usable neighbours.
    NoNeighbors,
    /// The MAC gave up after exhausting retransmission attempts.
    MacGiveUp,
}

impl DropReason {
    /// Stable snake_case label used in JSONL artifacts and counter names.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::TtlExpired => "ttl_expired",
            DropReason::NoNeighbors => "no_neighbors",
            DropReason::MacGiveUp => "mac_give_up",
        }
    }

    /// Parses a [`DropReason::label`] back (for artifact ingestion).
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "ttl_expired" => Some(DropReason::TtlExpired),
            "no_neighbors" => Some(DropReason::NoNeighbors),
            "mac_give_up" => Some(DropReason::MacGiveUp),
            _ => None,
        }
    }
}

impl From<robonet_net::DropReason> for DropReason {
    fn from(r: robonet_net::DropReason) -> Self {
        match r {
            robonet_net::DropReason::TtlExpired => DropReason::TtlExpired,
            robonet_net::DropReason::NoNeighbors => DropReason::NoNeighbors,
        }
    }
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One protocol-level event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A sensor's lifetime expired.
    Failure {
        /// Simulated time in seconds.
        t: f64,
        /// The failed sensor.
        sensor: NodeId,
    },
    /// A guardian noticed a silent guardee and originated a report.
    Detected {
        /// Simulated time in seconds.
        t: f64,
        /// The detecting guardian.
        guardian: NodeId,
        /// The failed node being reported.
        failed: NodeId,
    },
    /// A failure report reached its manager (robot or central manager).
    ReportDelivered {
        /// Simulated time in seconds.
        t: f64,
        /// Who received it.
        manager: NodeId,
        /// The failed node.
        failed: NodeId,
        /// Hops the report travelled.
        hops: u32,
    },
    /// A robot accepted a replacement task.
    Dispatched {
        /// Simulated time in seconds.
        t: f64,
        /// The maintainer robot.
        robot: NodeId,
        /// The failed node.
        failed: NodeId,
        /// `true` if the robot departed immediately (it was idle).
        departed: bool,
    },
    /// A robot installed a replacement.
    Replaced {
        /// Simulated time in seconds.
        t: f64,
        /// The maintainer robot.
        robot: NodeId,
        /// The revived sensor.
        sensor: NodeId,
        /// Metres driven for this task's final leg.
        travel: f64,
        /// Where the installation happened.
        loc: Point,
    },
    /// A packet was lost in flight (routing dead end or MAC give-up).
    PacketDropped {
        /// Simulated time in seconds.
        t: f64,
        /// The node holding the packet when it was dropped.
        at: NodeId,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A robot flooded a location update through its subarea (§3.2).
    LocUpdateFlooded {
        /// Simulated time in seconds.
        t: f64,
        /// The announcing robot.
        robot: NodeId,
        /// The update's dedup sequence number.
        seq: u64,
    },
    /// A robot started driving one leg of a replacement task.
    RobotLegStarted {
        /// Simulated time in seconds.
        t: f64,
        /// The maintainer robot.
        robot: NodeId,
        /// The failed node this leg serves.
        failed: NodeId,
        /// Departure point.
        from: Point,
        /// Destination point.
        to: Point,
    },
    /// A robot finished a leg (arrived at its destination).
    RobotLegEnded {
        /// Simulated time in seconds.
        t: f64,
        /// The maintainer robot.
        robot: NodeId,
        /// Metres driven on this leg.
        travel: f64,
    },
    /// The fault injector fired: a message was dropped at origin or a
    /// robot degraded.
    FaultInjected {
        /// Simulated time in seconds.
        t: f64,
        /// What was injected.
        kind: crate::fault::FaultKind,
        /// The node the fault hit (sender of the lost message, or the
        /// degraded robot).
        node: NodeId,
    },
    /// A guardian re-sent a failure report after its retry window
    /// expired without the guardee recovering.
    ReportRetried {
        /// Simulated time in seconds.
        t: f64,
        /// The retrying guardian.
        guardian: NodeId,
        /// The failed node being re-reported.
        failed: NodeId,
        /// Attempt number (2 = first retry).
        attempt: u32,
    },
    /// The manager's dispatch timed out without evidence the robot took
    /// the job; it is re-dispatching.
    DispatchTimedOut {
        /// Simulated time in seconds.
        t: f64,
        /// The failed node whose repair stalled.
        failed: NodeId,
        /// The dispatch attempt that timed out (1 = original).
        attempt: u32,
    },
    /// A robot broke down and went silent.
    RobotDied {
        /// Simulated time in seconds.
        t: f64,
        /// The broken robot.
        robot: NodeId,
    },
    /// A broken robot finished its in-place repair and rejoined.
    RobotRepaired {
        /// Simulated time in seconds.
        t: f64,
        /// The repaired robot.
        robot: NodeId,
    },
    /// A live robot presumed a silent peer dead and announced itself to
    /// the peer's subarea.
    TakeoverAssumed {
        /// Simulated time in seconds.
        t: f64,
        /// The robot taking over.
        robot: NodeId,
        /// The presumed-dead peer.
        dead: NodeId,
        /// Subarea tag of the takeover flood (`u32::MAX` = unscoped).
        subarea: u32,
    },
    /// A periodic telemetry snapshot from the live sampler (only
    /// present when the run enables `sample_every`).
    TelemetrySample {
        /// Simulated time in seconds.
        t: f64,
        /// The gauges captured at this instant.
        sample: crate::obs::timeline::TelemetrySnapshot,
    },
    /// The online health monitor caught a conservation invariant out of
    /// balance — the simulation and its event ledger disagree.
    InvariantViolated {
        /// Simulated time in seconds.
        t: f64,
        /// Which invariant failed.
        invariant: crate::obs::timeline::Invariant,
        /// The value the ledger predicts.
        expected: u64,
        /// The value the simulation reports.
        actual: u64,
    },
}

impl TraceEvent {
    /// Event time in seconds.
    pub fn time(&self) -> f64 {
        match self {
            TraceEvent::Failure { t, .. }
            | TraceEvent::Detected { t, .. }
            | TraceEvent::ReportDelivered { t, .. }
            | TraceEvent::Dispatched { t, .. }
            | TraceEvent::Replaced { t, .. }
            | TraceEvent::PacketDropped { t, .. }
            | TraceEvent::LocUpdateFlooded { t, .. }
            | TraceEvent::RobotLegStarted { t, .. }
            | TraceEvent::RobotLegEnded { t, .. }
            | TraceEvent::FaultInjected { t, .. }
            | TraceEvent::ReportRetried { t, .. }
            | TraceEvent::DispatchTimedOut { t, .. }
            | TraceEvent::RobotDied { t, .. }
            | TraceEvent::RobotRepaired { t, .. }
            | TraceEvent::TakeoverAssumed { t, .. }
            | TraceEvent::TelemetrySample { t, .. }
            | TraceEvent::InvariantViolated { t, .. } => *t,
        }
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::Failure { t, sensor } => write!(f, "[{t:9.1}s] {sensor} failed"),
            TraceEvent::Detected {
                t,
                guardian,
                failed,
            } => {
                write!(f, "[{t:9.1}s] {guardian} detected silence of {failed}")
            }
            TraceEvent::ReportDelivered {
                t,
                manager,
                failed,
                hops,
            } => {
                write!(
                    f,
                    "[{t:9.1}s] report of {failed} reached {manager} in {hops} hops"
                )
            }
            TraceEvent::Dispatched {
                t,
                robot,
                failed,
                departed,
            } => write!(
                f,
                "[{t:9.1}s] {robot} tasked with {failed}{}",
                if *departed { ", departing" } else { ", queued" }
            ),
            TraceEvent::Replaced {
                t,
                robot,
                sensor,
                travel,
                loc,
            } => {
                write!(
                    f,
                    "[{t:9.1}s] {robot} replaced {sensor} at {loc} after {travel:.0} m"
                )
            }
            TraceEvent::PacketDropped { t, at, reason } => {
                write!(f, "[{t:9.1}s] packet dropped at {at} ({reason})")
            }
            TraceEvent::LocUpdateFlooded { t, robot, seq } => {
                write!(f, "[{t:9.1}s] {robot} flooded location update #{seq}")
            }
            TraceEvent::RobotLegStarted {
                t,
                robot,
                failed,
                from,
                to,
            } => {
                write!(f, "[{t:9.1}s] {robot} departs {from} -> {to} for {failed}")
            }
            TraceEvent::RobotLegEnded { t, robot, travel } => {
                write!(f, "[{t:9.1}s] {robot} arrived after {travel:.0} m")
            }
            TraceEvent::FaultInjected { t, kind, node } => {
                write!(f, "[{t:9.1}s] fault injected at {node}: {kind}")
            }
            TraceEvent::ReportRetried {
                t,
                guardian,
                failed,
                attempt,
            } => write!(
                f,
                "[{t:9.1}s] {guardian} re-reported {failed} (attempt {attempt})"
            ),
            TraceEvent::DispatchTimedOut { t, failed, attempt } => write!(
                f,
                "[{t:9.1}s] dispatch for {failed} timed out (attempt {attempt})"
            ),
            TraceEvent::RobotDied { t, robot } => {
                write!(f, "[{t:9.1}s] {robot} broke down")
            }
            TraceEvent::RobotRepaired { t, robot } => {
                write!(f, "[{t:9.1}s] {robot} repaired and back in service")
            }
            TraceEvent::TakeoverAssumed {
                t,
                robot,
                dead,
                subarea,
            } => {
                if *subarea == u32::MAX {
                    write!(f, "[{t:9.1}s] {robot} assumed takeover from {dead}")
                } else {
                    write!(
                        f,
                        "[{t:9.1}s] {robot} assumed takeover of subarea {subarea} from {dead}"
                    )
                }
            }
            TraceEvent::TelemetrySample { t, sample } => {
                write!(
                    f,
                    "[{t:9.1}s] telemetry: {} alive, {} down, {} open, coverage {:.3}",
                    sample.alive,
                    sample.down,
                    sample.open_total(),
                    sample.coverage
                )
            }
            TraceEvent::InvariantViolated {
                t,
                invariant,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "[{t:9.1}s] INVARIANT VIOLATED: {invariant} expected {expected}, got {actual}"
                )
            }
        }
    }
}

/// A bounded FIFO of [`TraceEvent`]s; the oldest events are dropped once
/// `capacity` is reached.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace that keeps at most `capacity` events (0 disables
    /// recording entirely).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            // Reserve the full bound: the ring really does fill up to
            // `capacity` before evicting, and an under-reserved VecDeque
            // would reallocate mid-run.
            events: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event (no-op when disabled).
    pub fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained lifecycle of one node: every event mentioning it.
    pub fn lifecycle_of(&self, node: NodeId) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| match e {
                TraceEvent::Failure { sensor, .. } => *sensor == node,
                TraceEvent::Detected {
                    guardian, failed, ..
                } => *guardian == node || *failed == node,
                TraceEvent::ReportDelivered {
                    manager, failed, ..
                } => *manager == node || *failed == node,
                TraceEvent::Dispatched { robot, failed, .. } => *robot == node || *failed == node,
                TraceEvent::Replaced { robot, sensor, .. } => *robot == node || *sensor == node,
                TraceEvent::PacketDropped { at, .. } => *at == node,
                TraceEvent::LocUpdateFlooded { robot, .. } => *robot == node,
                TraceEvent::RobotLegStarted { robot, failed, .. } => {
                    *robot == node || *failed == node
                }
                TraceEvent::RobotLegEnded { robot, .. } => *robot == node,
                TraceEvent::FaultInjected { node: n, .. } => *n == node,
                TraceEvent::ReportRetried {
                    guardian, failed, ..
                } => *guardian == node || *failed == node,
                TraceEvent::DispatchTimedOut { failed, .. } => *failed == node,
                TraceEvent::RobotDied { robot, .. } | TraceEvent::RobotRepaired { robot, .. } => {
                    *robot == node
                }
                TraceEvent::TakeoverAssumed { robot, dead, .. } => *robot == node || *dead == node,
                TraceEvent::TelemetrySample { .. } | TraceEvent::InvariantViolated { .. } => false,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, sensor: u32) -> TraceEvent {
        TraceEvent::Failure {
            t,
            sensor: NodeId::new(sensor),
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::with_capacity(0);
        assert!(!tr.is_enabled());
        tr.push(ev(1.0, 1));
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut tr = Trace::with_capacity(3);
        for i in 0..5 {
            tr.push(ev(i as f64, i));
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        let times: Vec<f64> = tr.events().map(TraceEvent::time).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn large_capacity_preallocates_fully() {
        // Regression: with_capacity used to clamp the reservation at 4096
        // even though the ring legitimately grows to `capacity`.
        let capacity = 10_000;
        let mut tr = Trace::with_capacity(capacity);
        assert!(tr.events.capacity() >= capacity);
        let before = tr.events.capacity();
        for i in 0..capacity + 5 {
            tr.push(ev(i as f64, i as u32));
        }
        assert_eq!(tr.len(), capacity);
        assert_eq!(tr.dropped(), 5);
        assert_eq!(
            tr.events.capacity(),
            before,
            "filling to capacity must not reallocate"
        );
    }

    #[test]
    fn drop_reason_labels_round_trip() {
        for reason in [
            DropReason::TtlExpired,
            DropReason::NoNeighbors,
            DropReason::MacGiveUp,
        ] {
            assert_eq!(DropReason::from_label(reason.label()), Some(reason));
        }
        assert_eq!(DropReason::from_label("cosmic_rays"), None);
    }

    #[test]
    fn lifecycle_filters_by_node() {
        let mut tr = Trace::with_capacity(16);
        tr.push(ev(1.0, 7));
        tr.push(TraceEvent::Detected {
            t: 2.0,
            guardian: NodeId::new(3),
            failed: NodeId::new(7),
        });
        tr.push(TraceEvent::Replaced {
            t: 3.0,
            robot: NodeId::new(100),
            sensor: NodeId::new(7),
            travel: 88.0,
            loc: Point::new(1.0, 2.0),
        });
        tr.push(ev(9.9, 8));
        assert_eq!(tr.lifecycle_of(NodeId::new(7)).len(), 3);
        assert_eq!(tr.lifecycle_of(NodeId::new(100)).len(), 1);
        assert_eq!(tr.lifecycle_of(NodeId::new(42)).len(), 0);
    }

    #[test]
    fn display_is_readable() {
        let text = TraceEvent::Replaced {
            t: 123.456,
            robot: NodeId::new(200),
            sensor: NodeId::new(7),
            travel: 88.2,
            loc: Point::new(10.0, 20.0),
        }
        .to_string();
        assert!(text.contains("n200"));
        assert!(text.contains("replaced n7"));
        assert!(text.contains("88 m"));
    }
}
