//! Declarative scenario files: field geometry, non-uniform deployment
//! regions, fleet spec, and a scheduled fault timeline, compiled to a
//! [`ScenarioConfig`].
//!
//! The format (`.rjson`) is relaxed JSON — strict JSON plus `//` line
//! comments and trailing commas — parsed by the hermetic parser in
//! [`crate::obs::json`]. Every semantic error (unknown key, bad type,
//! overlapping regions, a timeline event after the simulation ends, a
//! negative rate, …) carries the 1-based line and column of the
//! offending token, so `robonet run --scenario file.rjson` points at
//! the exact spot in the file.
//!
//! # Determinism contract
//!
//! A scenario that encodes exactly the CLI defaults — no regions, no
//! faults, an empty timeline — compiles to the same [`ScenarioConfig`]
//! the flag path builds, field for field and in the same construction
//! order, so its runs are **byte-identical** to flag-driven runs
//! (enforced by the inertness tests and the `paper_baseline` CI gate).
//! Scenario features only spend randomness when actually used: regions
//! without a lifetime override never build per-sensor state, an empty
//! timeline schedules nothing, and inert regions (density 1, no
//! override) are dropped at compile time so they cannot perturb the
//! deployment RNG sequence.
//!
//! # Format
//!
//! ```text
//! {
//!   "name": "blackout_quadrant",       // required
//!   "algorithm": "dynamic",            // centralized|fixed|fixed-hex|dynamic
//!   "k": 2,                            // fleet is k² robots
//!   "seed": 1,
//!   "scale": 64.0,                     // time compression, like --scale
//!   "sensors": 200,                    // optional, like --sensors
//!   "field": {                         // optional overrides (pre-scale)
//!     "area_per_robot_side": 200.0,
//!     "mean_lifetime_s": 16000.0,
//!     "sim_time_s": 64000.0,
//!   },
//!   "regions": [                       // non-uniform deployment
//!     { "name": "core", "rect": [300, 300, 500, 500],
//!       "density": 4.0, "mean_lifetime_s": 8000.0 },
//!   ],
//!   "faults": {                        // probabilistic plan, like the flags
//!     "report_loss": 0.05, "dispatch_loss": 0.0, "update_loss": 0.0,
//!     "breakdown_mean_s": 8000.0, "breakdown_repair_s": 600.0,
//!     "slow_prob": 0.5, "slow_factor": 0.25, "max_report_attempts": 6,
//!   },
//!   "timeline": [                      // scheduled events (times pre-scale)
//!     { "at_s": 32000, "blackout": [0, 0, 200, 200] },
//!     { "from_s": 16000, "until_s": 32000,
//!       "partition": [[0, 0, 200, 400], [200, 0, 400, 400]] },
//!     { "at_s": 20000, "attrition": 2 },
//!     { "at_s": 30000, "loss": { "report": 0.5 } },
//!   ],
//! }
//! ```
//!
//! Geometry is written in full-scale field coordinates (a rectangle as
//! `[x0, y0, x1, y1]`, a polygon as `[[x, y], …]` counter-clockwise);
//! distances are never scaled. Times are authored at full scale and
//! compressed by `scale` together with the rest of the clock, exactly
//! like [`ScenarioConfig::scaled`].

use robonet_des::SimDuration;
use robonet_geom::{ConvexPolygon, Point};

use crate::config::{Algorithm, DeployRegion, ScenarioConfig};
use crate::fault::{FaultPlan, TimedFault};
use crate::obs::json::{line_col, parse_relaxed, SpannedNode, SpannedValue};

/// What went wrong, as a machine-matchable class (the error classes the
/// parser tests enumerate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioErrorKind {
    /// The file is not well-formed relaxed JSON.
    Syntax,
    /// An object contains a key the schema does not define.
    UnknownKey,
    /// The same key appears twice in one object.
    DuplicateKey,
    /// A required key is absent.
    MissingKey,
    /// A value has the wrong JSON type.
    BadType,
    /// A value has the right type but an impossible value.
    BadValue,
    /// A probability, density, duration or time is negative.
    NegativeRate,
    /// Two deployment regions overlap.
    OverlappingRegions,
    /// A timeline event is scheduled after the simulation ends.
    EventAfterSimEnd,
    /// The compiled configuration failed [`ScenarioConfig::validate`]
    /// (backstop for constraints without a single source position).
    Invalid,
}

/// A scenario compilation error with a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column (in characters) of the offending token.
    pub col: u32,
    /// Machine-matchable error class.
    pub kind: ScenarioErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ScenarioError {}

/// Scalar fields a `robonet run` invocation may override on top of a
/// scenario file (`None` = take the file's value).
#[derive(Debug, Clone, Default)]
pub struct Overrides {
    /// `--alg`.
    pub algorithm: Option<Algorithm>,
    /// `--k`.
    pub k: Option<usize>,
    /// `--sensors`.
    pub sensors: Option<usize>,
    /// `--scale`.
    pub scale: Option<f64>,
    /// `--seed`.
    pub seed: Option<u64>,
    /// A fault plan built from CLI fault flags; its scalar fields
    /// replace the scenario's, while the scenario's timeline is kept.
    pub faults: Option<FaultPlan>,
}

/// A compiled scenario: the runnable config plus the effective time
/// compression (for display — the config's times are already divided).
#[derive(Debug, Clone, PartialEq)]
pub struct Compiled {
    /// The runnable configuration ([`ScenarioConfig::validate`]d).
    pub cfg: ScenarioConfig,
    /// The effective `scale` after overrides.
    pub scale: f64,
}

/// Compiles scenario `source` (relaxed JSON) under `overrides`.
///
/// # Errors
///
/// Returns the first problem found, with its line and column.
pub fn compile(source: &str, overrides: &Overrides) -> Result<Compiled, ScenarioError> {
    Compiler { src: source }.compile(overrides)
}

struct Compiler<'a> {
    src: &'a str,
}

type Fields = [(usize, String, SpannedValue)];

impl<'a> Compiler<'a> {
    fn err(&self, at: usize, kind: ScenarioErrorKind, message: String) -> ScenarioError {
        let (line, col) = line_col(self.src, at);
        ScenarioError {
            line,
            col,
            kind,
            message,
        }
    }

    /// The value under `key`, or `None`. Object keys are pre-checked
    /// for duplicates, so first match is the only match.
    fn get<'v>(&self, fields: &'v Fields, key: &str) -> Option<&'v SpannedValue> {
        fields.iter().find(|(_, k, _)| k == key).map(|(_, _, v)| v)
    }

    /// Checks an object's keys against the schema: every key must be in
    /// `allowed` and appear exactly once.
    fn check_keys(
        &self,
        fields: &Fields,
        allowed: &[&str],
        what: &str,
    ) -> Result<(), ScenarioError> {
        for (i, (at, key, _)) in fields.iter().enumerate() {
            if !allowed.contains(&key.as_str()) {
                return Err(self.err(
                    *at,
                    ScenarioErrorKind::UnknownKey,
                    format!(
                        "unknown key \"{key}\" in {what} (expected one of: {})",
                        allowed.join(", ")
                    ),
                ));
            }
            if fields[..i].iter().any(|(_, k, _)| k == key) {
                return Err(self.err(
                    *at,
                    ScenarioErrorKind::DuplicateKey,
                    format!("duplicate key \"{key}\" in {what}"),
                ));
            }
        }
        Ok(())
    }

    fn object<'v>(&self, v: &'v SpannedValue, what: &str) -> Result<&'v Fields, ScenarioError> {
        match &v.node {
            SpannedNode::Object(fields) => Ok(fields),
            other => Err(self.err(
                v.at,
                ScenarioErrorKind::BadType,
                format!("{what} must be an object, found {}", other.type_name()),
            )),
        }
    }

    fn array<'v>(
        &self,
        v: &'v SpannedValue,
        what: &str,
    ) -> Result<&'v [SpannedValue], ScenarioError> {
        match &v.node {
            SpannedNode::Array(items) => Ok(items),
            other => Err(self.err(
                v.at,
                ScenarioErrorKind::BadType,
                format!("{what} must be an array, found {}", other.type_name()),
            )),
        }
    }

    fn number(&self, v: &SpannedValue, what: &str) -> Result<f64, ScenarioError> {
        match v.node {
            SpannedNode::Number(n) => Ok(n),
            ref other => Err(self.err(
                v.at,
                ScenarioErrorKind::BadType,
                format!("{what} must be a number, found {}", other.type_name()),
            )),
        }
    }

    fn string<'v>(&self, v: &'v SpannedValue, what: &str) -> Result<&'v str, ScenarioError> {
        match &v.node {
            SpannedNode::String(s) => Ok(s),
            other => Err(self.err(
                v.at,
                ScenarioErrorKind::BadType,
                format!("{what} must be a string, found {}", other.type_name()),
            )),
        }
    }

    /// A non-negative integer (rejects fractions and negatives).
    fn uint(&self, v: &SpannedValue, what: &str) -> Result<u64, ScenarioError> {
        let n = self.number(v, what)?;
        if n < 0.0 {
            return Err(self.err(
                v.at,
                ScenarioErrorKind::NegativeRate,
                format!("{what} must be non-negative, got {n}"),
            ));
        }
        if !(n.is_finite() && n.fract() == 0.0 && n <= u64::MAX as f64) {
            return Err(self.err(
                v.at,
                ScenarioErrorKind::BadValue,
                format!("{what} must be an integer, got {n}"),
            ));
        }
        Ok(n as u64)
    }

    /// A probability in `[0, 1]`; negatives are the `NegativeRate`
    /// class, everything else out of range is `BadValue`.
    fn prob(&self, v: &SpannedValue, what: &str) -> Result<f64, ScenarioError> {
        let n = self.number(v, what)?;
        if n < 0.0 {
            return Err(self.err(
                v.at,
                ScenarioErrorKind::NegativeRate,
                format!("{what} is a probability and must not be negative, got {n}"),
            ));
        }
        if !(n.is_finite() && n <= 1.0) {
            return Err(self.err(
                v.at,
                ScenarioErrorKind::BadValue,
                format!("{what} must be a probability in [0, 1], got {n}"),
            ));
        }
        Ok(n)
    }

    /// A strictly positive duration or rate in seconds.
    fn positive(&self, v: &SpannedValue, what: &str) -> Result<f64, ScenarioError> {
        let n = self.number(v, what)?;
        if n < 0.0 {
            return Err(self.err(
                v.at,
                ScenarioErrorKind::NegativeRate,
                format!("{what} must not be negative, got {n}"),
            ));
        }
        if !(n.is_finite() && n > 0.0) {
            return Err(self.err(
                v.at,
                ScenarioErrorKind::BadValue,
                format!("{what} must be positive, got {n}"),
            ));
        }
        Ok(n)
    }

    /// A non-negative simulation time in seconds.
    fn time(&self, v: &SpannedValue, what: &str) -> Result<f64, ScenarioError> {
        let n = self.number(v, what)?;
        if n < 0.0 {
            return Err(self.err(
                v.at,
                ScenarioErrorKind::NegativeRate,
                format!("{what} is a simulation time and must not be negative, got {n}"),
            ));
        }
        if !n.is_finite() {
            return Err(self.err(
                v.at,
                ScenarioErrorKind::BadValue,
                format!("{what} must be finite, got {n}"),
            ));
        }
        Ok(n)
    }

    /// Region/timeline geometry: `[x0, y0, x1, y1]` (axis-aligned
    /// rectangle) or `[[x, y], …]` (counter-clockwise convex polygon).
    fn geometry(&self, v: &SpannedValue, what: &str) -> Result<ConvexPolygon, ScenarioError> {
        let items = self.array(v, what)?;
        let rectangular = items
            .iter()
            .all(|i| matches!(i.node, SpannedNode::Number(_)));
        if rectangular {
            if items.len() != 4 {
                return Err(self.err(
                    v.at,
                    ScenarioErrorKind::BadValue,
                    format!(
                        "{what} rectangle must be [x0, y0, x1, y1], got {} numbers",
                        items.len()
                    ),
                ));
            }
            let mut c = [0.0; 4];
            for (slot, item) in c.iter_mut().zip(items) {
                let n = self.number(item, what)?;
                if !n.is_finite() {
                    return Err(self.err(
                        item.at,
                        ScenarioErrorKind::BadValue,
                        format!("{what} coordinate must be finite, got {n}"),
                    ));
                }
                *slot = n;
            }
            let [x0, y0, x1, y1] = c;
            if !(x1 > x0 && y1 > y0) {
                return Err(self.err(
                    v.at,
                    ScenarioErrorKind::BadValue,
                    format!("{what} rectangle [{x0}, {y0}, {x1}, {y1}] has no area"),
                ));
            }
            return Ok(ConvexPolygon::new(vec![
                Point::new(x0, y0),
                Point::new(x1, y0),
                Point::new(x1, y1),
                Point::new(x0, y1),
            ])
            .expect("positive-area CCW rectangle"));
        }
        let mut vertices = Vec::with_capacity(items.len());
        for item in items {
            let xy = self.array(item, "polygon vertex")?;
            if xy.len() != 2 {
                return Err(self.err(
                    item.at,
                    ScenarioErrorKind::BadValue,
                    format!("polygon vertex must be [x, y], got {} values", xy.len()),
                ));
            }
            let x = self.number(&xy[0], "vertex x")?;
            let y = self.number(&xy[1], "vertex y")?;
            if !(x.is_finite() && y.is_finite()) {
                return Err(self.err(
                    item.at,
                    ScenarioErrorKind::BadValue,
                    "polygon vertex coordinates must be finite".into(),
                ));
            }
            vertices.push(Point::new(x, y));
        }
        ConvexPolygon::new(vertices).ok_or_else(|| {
            self.err(
                v.at,
                ScenarioErrorKind::BadValue,
                format!("{what} vertices must form a counter-clockwise convex polygon"),
            )
        })
    }

    fn regions(&self, v: &SpannedValue) -> Result<Vec<DeployRegion>, ScenarioError> {
        const KEYS: &[&str] = &["name", "rect", "poly", "density", "mean_lifetime_s"];
        let items = self.array(v, "\"regions\"")?;
        let mut out: Vec<DeployRegion> = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let what = format!("region {i}");
            let fields = self.object(item, &what)?;
            self.check_keys(fields, KEYS, &what)?;
            if let Some(name) = self.get(fields, "name") {
                self.string(name, "region \"name\"")?;
            }
            let poly = match (self.get(fields, "rect"), self.get(fields, "poly")) {
                (Some(rect), None) => self.geometry(rect, &what)?,
                (None, Some(poly)) => self.geometry(poly, &what)?,
                _ => {
                    return Err(self.err(
                        item.at,
                        ScenarioErrorKind::MissingKey,
                        format!("{what} needs exactly one of \"rect\" or \"poly\""),
                    ));
                }
            };
            let density = match self.get(fields, "density") {
                Some(d) => self.positive(d, "region \"density\"")?,
                None => 1.0,
            };
            let mean_lifetime = self
                .get(fields, "mean_lifetime_s")
                .map(|m| self.positive(m, "region \"mean_lifetime_s\""))
                .transpose()?
                .map(SimDuration::from_secs);
            // Overlaps are authoring errors even between inert regions.
            for (j, earlier) in out.iter().enumerate() {
                if poly.intersection(&earlier.poly).is_some() {
                    return Err(self.err(
                        item.at,
                        ScenarioErrorKind::OverlappingRegions,
                        format!("region {i} overlaps region {j}"),
                    ));
                }
            }
            out.push(DeployRegion {
                poly,
                density,
                mean_lifetime,
            });
        }
        // Inert regions are documentation: dropping them keeps the
        // deployment RNG sequence identical to a region-free run.
        out.retain(|r| !r.is_inert());
        Ok(out)
    }

    fn fault_plan(&self, v: &SpannedValue) -> Result<FaultPlan, ScenarioError> {
        const KEYS: &[&str] = &[
            "report_loss",
            "dispatch_loss",
            "update_loss",
            "breakdown_mean_s",
            "breakdown_repair_s",
            "slow_prob",
            "slow_factor",
            "max_report_attempts",
        ];
        let fields = self.object(v, "\"faults\"")?;
        self.check_keys(fields, KEYS, "\"faults\"")?;
        let mut plan = FaultPlan::default();
        if let Some(p) = self.get(fields, "report_loss") {
            plan.report_loss = self.prob(p, "\"report_loss\"")?;
        }
        if let Some(p) = self.get(fields, "dispatch_loss") {
            plan.dispatch_loss = self.prob(p, "\"dispatch_loss\"")?;
        }
        if let Some(p) = self.get(fields, "update_loss") {
            plan.update_loss = self.prob(p, "\"update_loss\"")?;
        }
        if let Some(m) = self.get(fields, "breakdown_mean_s") {
            plan.breakdown_mean = Some(SimDuration::from_secs(
                self.positive(m, "\"breakdown_mean_s\"")?,
            ));
        }
        if let Some(m) = self.get(fields, "breakdown_repair_s") {
            plan.breakdown_repair = Some(SimDuration::from_secs(
                self.positive(m, "\"breakdown_repair_s\"")?,
            ));
        }
        if let Some(p) = self.get(fields, "slow_prob") {
            plan.slow_prob = self.prob(p, "\"slow_prob\"")?;
        }
        if let Some(f) = self.get(fields, "slow_factor") {
            let n = self.positive(f, "\"slow_factor\"")?;
            if n >= 1.0 {
                return Err(self.err(
                    f.at,
                    ScenarioErrorKind::BadValue,
                    format!("\"slow_factor\" must be below 1 (a slowdown), got {n}"),
                ));
            }
            plan.slow_factor = n;
        }
        if let Some(a) = self.get(fields, "max_report_attempts") {
            let n = self.uint(a, "\"max_report_attempts\"")?;
            if n == 0 {
                return Err(self.err(
                    a.at,
                    ScenarioErrorKind::BadValue,
                    "\"max_report_attempts\" must be at least 1".into(),
                ));
            }
            plan.max_report_attempts = n as u32;
        }
        Ok(plan)
    }

    /// One timeline entry, validated against the (unscaled) simulation
    /// end `sim_end_s`.
    fn timeline_event(
        &self,
        item: &SpannedValue,
        i: usize,
        sim_end_s: f64,
    ) -> Result<TimedFault, ScenarioError> {
        let what = format!("timeline event {i}");
        let fields = self.object(item, &what)?;
        const DISCRIMINANTS: &[&str] = &["blackout", "partition", "attrition", "loss"];
        let present: Vec<&str> = DISCRIMINANTS
            .iter()
            .copied()
            .filter(|d| self.get(fields, d).is_some())
            .collect();
        let [discriminant] = present.as_slice() else {
            return Err(self.err(
                item.at,
                ScenarioErrorKind::MissingKey,
                format!(
                    "{what} must contain exactly one of: {}",
                    DISCRIMINANTS.join(", ")
                ),
            ));
        };
        // Times are compared as SimDurations, not raw f64 — the clock
        // quantizes, and an event within one quantum of the end must
        // count as in-horizon (exactly what `validate` will later see).
        let sim_end = SimDuration::from_secs(sim_end_s);
        let at_s = |fields: &Fields| -> Result<SimDuration, ScenarioError> {
            let Some(at) = self.get(fields, "at_s") else {
                return Err(self.err(
                    item.at,
                    ScenarioErrorKind::MissingKey,
                    format!("{what} needs an \"at_s\" time"),
                ));
            };
            let t = SimDuration::from_secs(self.time(at, "\"at_s\"")?);
            if t > sim_end {
                return Err(self.err(
                    at.at,
                    ScenarioErrorKind::EventAfterSimEnd,
                    format!(
                        "{what} at {} s is after the simulation ends ({sim_end_s} s)",
                        t.as_secs_f64()
                    ),
                ));
            }
            Ok(t)
        };
        match *discriminant {
            "blackout" => {
                self.check_keys(fields, &["at_s", "blackout"], &what)?;
                let region =
                    self.geometry(self.get(fields, "blackout").unwrap(), "\"blackout\"")?;
                Ok(TimedFault::Blackout {
                    at: at_s(fields)?,
                    region,
                })
            }
            "partition" => {
                self.check_keys(fields, &["from_s", "until_s", "partition"], &what)?;
                let (Some(from_v), Some(until_v)) =
                    (self.get(fields, "from_s"), self.get(fields, "until_s"))
                else {
                    return Err(self.err(
                        item.at,
                        ScenarioErrorKind::MissingKey,
                        format!("{what} needs \"from_s\" and \"until_s\" times"),
                    ));
                };
                let from = SimDuration::from_secs(self.time(from_v, "\"from_s\"")?);
                let until = SimDuration::from_secs(self.time(until_v, "\"until_s\"")?);
                if from > sim_end {
                    return Err(self.err(
                        from_v.at,
                        ScenarioErrorKind::EventAfterSimEnd,
                        format!(
                            "{what} at {} s is after the simulation ends ({sim_end_s} s)",
                            from.as_secs_f64()
                        ),
                    ));
                }
                if until <= from {
                    return Err(self.err(
                        until_v.at,
                        ScenarioErrorKind::BadValue,
                        format!(
                            "{what} must end after it starts ({} s <= {} s)",
                            until.as_secs_f64(),
                            from.as_secs_f64()
                        ),
                    ));
                }
                let halves = self.array(self.get(fields, "partition").unwrap(), "\"partition\"")?;
                let [a, b] = halves else {
                    return Err(self.err(
                        item.at,
                        ScenarioErrorKind::BadValue,
                        format!(
                            "\"partition\" must list exactly two regions, got {}",
                            halves.len()
                        ),
                    ));
                };
                Ok(TimedFault::Partition {
                    from,
                    until,
                    a: self.geometry(a, "partition side A")?,
                    b: self.geometry(b, "partition side B")?,
                })
            }
            "attrition" => {
                self.check_keys(fields, &["at_s", "attrition"], &what)?;
                let robots = self.uint(self.get(fields, "attrition").unwrap(), "\"attrition\"")?;
                if robots == 0 {
                    return Err(self.err(
                        item.at,
                        ScenarioErrorKind::BadValue,
                        "\"attrition\" must kill at least one robot".into(),
                    ));
                }
                Ok(TimedFault::Attrition {
                    at: at_s(fields)?,
                    robots: robots as u32,
                })
            }
            "loss" => {
                self.check_keys(fields, &["at_s", "loss"], &what)?;
                let loss = self.get(fields, "loss").unwrap();
                let loss_fields = self.object(loss, "\"loss\"")?;
                self.check_keys(loss_fields, &["report", "dispatch", "update"], "\"loss\"")?;
                let rate = |key: &str| -> Result<f64, ScenarioError> {
                    self.get(loss_fields, key)
                        .map(|p| self.prob(p, &format!("\"loss\" {key}")))
                        .unwrap_or(Ok(0.0))
                };
                Ok(TimedFault::LossRate {
                    at: at_s(fields)?,
                    report: rate("report")?,
                    dispatch: rate("dispatch")?,
                    update: rate("update")?,
                })
            }
            _ => unreachable!("discriminant comes from DISCRIMINANTS"),
        }
    }

    fn compile(&self, ov: &Overrides) -> Result<Compiled, ScenarioError> {
        const ROOT_KEYS: &[&str] = &[
            "name",
            "algorithm",
            "k",
            "seed",
            "scale",
            "sensors",
            "field",
            "regions",
            "faults",
            "timeline",
        ];
        let root = parse_relaxed(self.src)
            .map_err(|e| self.err(e.at, ScenarioErrorKind::Syntax, e.message))?;
        let fields = self.object(&root, "the scenario")?;
        self.check_keys(fields, ROOT_KEYS, "the scenario")?;

        let Some(name_v) = self.get(fields, "name") else {
            return Err(self.err(
                root.at,
                ScenarioErrorKind::MissingKey,
                "the scenario needs a \"name\"".into(),
            ));
        };
        let name = self.string(name_v, "\"name\"")?.to_string();

        let algorithm = match ov.algorithm {
            Some(a) => a,
            None => match self.get(fields, "algorithm") {
                Some(v) => {
                    let s = self.string(v, "\"algorithm\"")?;
                    Algorithm::parse(s).ok_or_else(|| {
                        let known: Vec<&str> = crate::coord::names().collect();
                        self.err(
                            v.at,
                            ScenarioErrorKind::BadValue,
                            format!(
                                "unknown algorithm \"{s}\" (expected one of: {})",
                                known.join(", ")
                            ),
                        )
                    })?
                }
                None => Algorithm::Dynamic,
            },
        };
        let k = match ov.k {
            Some(k) => k,
            None => match self.get(fields, "k") {
                Some(v) => {
                    let k = self.uint(v, "\"k\"")?;
                    if k == 0 {
                        return Err(self.err(
                            v.at,
                            ScenarioErrorKind::BadValue,
                            "\"k\" must be at least 1".into(),
                        ));
                    }
                    k as usize
                }
                None => 2,
            },
        };
        let seed = match ov.seed {
            Some(s) => s,
            None => match self.get(fields, "seed") {
                Some(v) => self.uint(v, "\"seed\"")?,
                None => 1,
            },
        };
        let scale = match ov.scale {
            Some(s) => s,
            None => match self.get(fields, "scale") {
                Some(v) => {
                    let s = self.number(v, "\"scale\"")?;
                    if !(s.is_finite() && s >= 1.0) {
                        return Err(self.err(
                            v.at,
                            ScenarioErrorKind::BadValue,
                            format!("\"scale\" must be at least 1, got {s}"),
                        ));
                    }
                    s
                }
                None => 1.0,
            },
        };
        let sensors = match ov.sensors {
            Some(n) => Some(n),
            None => self
                .get(fields, "sensors")
                .map(|v| self.uint(v, "\"sensors\"").map(|n| n as usize))
                .transpose()?,
        };

        // Mirror cmd_run's construction order exactly: preset → sensors
        // → field overrides → faults → scale. A scenario that encodes
        // the defaults therefore builds the identical config.
        let mut cfg = ScenarioConfig::paper(k, algorithm).with_seed(seed);
        if let Some(n) = sensors {
            let fleet = k * k;
            let spr = n / fleet;
            if spr == 0 || spr * fleet != n {
                let at = self.get(fields, "sensors").map_or(root.at, |v| v.at);
                return Err(self.err(
                    at,
                    ScenarioErrorKind::BadValue,
                    format!("{n} sensors do not divide evenly into the {k}x{k} fleet"),
                ));
            }
            cfg.sensors_per_robot = spr;
            cfg.area_per_robot_side = 200.0 * (spr as f64 / 50.0).sqrt();
        }
        if let Some(field_v) = self.get(fields, "field") {
            const KEYS: &[&str] = &["area_per_robot_side", "mean_lifetime_s", "sim_time_s"];
            let ff = self.object(field_v, "\"field\"")?;
            self.check_keys(ff, KEYS, "\"field\"")?;
            if let Some(v) = self.get(ff, "area_per_robot_side") {
                cfg.area_per_robot_side = self.positive(v, "\"area_per_robot_side\"")?;
            }
            if let Some(v) = self.get(ff, "mean_lifetime_s") {
                cfg.mean_lifetime =
                    SimDuration::from_secs(self.positive(v, "\"mean_lifetime_s\"")?);
            }
            if let Some(v) = self.get(ff, "sim_time_s") {
                cfg.sim_time = SimDuration::from_secs(self.positive(v, "\"sim_time_s\"")?);
            }
        }

        let sim_end_s = cfg.sim_time.as_secs_f64();
        let mut timeline = Vec::new();
        if let Some(tl) = self.get(fields, "timeline") {
            let items = self.array(tl, "\"timeline\"")?;
            for (i, item) in items.iter().enumerate() {
                timeline.push(self.timeline_event(item, i, sim_end_s)?);
            }
            timeline.sort_by_key(|a| a.at());
        }
        let mut plan = match self.get(fields, "faults") {
            Some(v) => Some(self.fault_plan(v)?),
            None if !timeline.is_empty() => Some(FaultPlan::default()),
            None => None,
        };
        if let Some(flag_plan) = &ov.faults {
            // CLI fault flags override the plan's scalar fields; the
            // scenario's timeline rides along untouched.
            plan = Some(flag_plan.clone());
        }
        if let Some(p) = plan.as_mut() {
            p.timeline = timeline;
        }
        // An inert plan is normalised away here (not just in the
        // harness) so the compiled config — which the manifest records —
        // equals the flag path's `None` field for field.
        cfg.faults = plan.filter(|p| !p.is_inert());

        if let Some(regions_v) = self.get(fields, "regions") {
            cfg.regions = self.regions(regions_v)?;
        }
        cfg.scenario_name = Some(name);
        if scale > 1.0 {
            cfg = cfg.scaled(scale);
        }
        cfg.validate().map_err(|message| ScenarioError {
            line: 1,
            col: 1,
            kind: ScenarioErrorKind::Invalid,
            message,
        })?;
        Ok(Compiled { cfg, scale })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_ok(src: &str) -> Compiled {
        compile(src, &Overrides::default()).expect("scenario compiles")
    }

    fn compile_err(src: &str) -> ScenarioError {
        compile(src, &Overrides::default()).expect_err("scenario must be rejected")
    }

    #[test]
    fn minimal_scenario_equals_flag_built_config() {
        let c = compile_ok(r#"{ "name": "defaults", "scale": 16.0 }"#);
        let mut expected = ScenarioConfig::paper(2, Algorithm::Dynamic)
            .with_seed(1)
            .scaled(16.0);
        expected.scenario_name = Some("defaults".into());
        assert_eq!(c.cfg, expected);
        assert_eq!(c.scale, 16.0);
    }

    #[test]
    fn comments_and_trailing_commas_are_fine() {
        let c = compile_ok(
            "{\n  // the paper's setup, compressed\n  \"name\": \"demo\",\n  \"k\": 3,\n  \"scale\": 8.0,\n}",
        );
        assert_eq!(c.cfg.k, 3);
        assert_eq!(c.cfg.n_robots(), 9);
    }

    #[test]
    fn full_scenario_compiles() {
        let c = compile_ok(
            r#"{
                "name": "kitchen_sink",
                "algorithm": "centralized",
                "k": 2, "seed": 9, "scale": 16.0, "sensors": 100,
                "field": { "mean_lifetime_s": 20000.0 },
                "regions": [
                    { "name": "core", "rect": [100, 100, 200, 200], "density": 4.0 },
                    { "poly": [[300, 300], [380, 300], [380, 380]], "density": 0.5,
                      "mean_lifetime_s": 10000.0 },
                ],
                "faults": { "report_loss": 0.05, "breakdown_mean_s": 32000.0 },
                "timeline": [
                    { "at_s": 48000, "attrition": 1 },
                    { "at_s": 16000, "blackout": [0, 0, 100, 100] },
                    { "from_s": 20000, "until_s": 30000,
                      "partition": [[0, 0, 200, 400], [200, 0, 400, 400]] },
                    { "at_s": 32000, "loss": { "report": 0.4, "update": 0.1 } },
                ],
            }"#,
        );
        assert_eq!(c.cfg.algorithm, Algorithm::Centralized);
        assert_eq!(c.cfg.seed, 9);
        assert_eq!(c.cfg.n_sensors(), 100);
        // mean_lifetime override, then scaled by 16.
        assert_eq!(c.cfg.mean_lifetime, SimDuration::from_secs(1250.0));
        assert_eq!(c.cfg.regions.len(), 2);
        let plan = c.cfg.faults.as_ref().expect("fault plan");
        assert_eq!(plan.report_loss, 0.05);
        // Timeline sorted by time and scaled with the clock.
        assert_eq!(plan.timeline.len(), 4);
        assert_eq!(plan.timeline[0].at(), SimDuration::from_secs(1000.0));
        assert!(matches!(plan.timeline[0], TimedFault::Blackout { .. }));
        assert!(matches!(plan.timeline[3], TimedFault::Attrition { .. }));
    }

    #[test]
    fn overrides_replace_file_scalars() {
        let src = r#"{ "name": "base", "algorithm": "fixed", "k": 3, "seed": 5, "scale": 8.0 }"#;
        let ov = Overrides {
            algorithm: Some(Algorithm::Dynamic),
            k: Some(2),
            seed: Some(11),
            scale: Some(16.0),
            ..Overrides::default()
        };
        let c = compile(src, &ov).unwrap();
        assert_eq!(c.cfg.algorithm, Algorithm::Dynamic);
        assert_eq!(c.cfg.k, 2);
        assert_eq!(c.cfg.seed, 11);
        assert_eq!(c.scale, 16.0);
    }

    #[test]
    fn flag_fault_plan_keeps_scenario_timeline() {
        let src = r#"{
            "name": "t",
            "scale": 16.0,
            "faults": { "report_loss": 0.5 },
            "timeline": [ { "at_s": 1000, "attrition": 1 } ],
        }"#;
        let ov = Overrides {
            faults: Some(FaultPlan::message_loss(0.1)),
            ..Overrides::default()
        };
        let plan = compile(src, &ov).unwrap().cfg.faults.unwrap();
        assert_eq!(plan.report_loss, 0.1, "flag scalar wins");
        assert_eq!(plan.timeline.len(), 1, "scenario timeline survives");
    }

    #[test]
    fn syntax_errors_carry_line_and_column() {
        let e = compile_err("{\n  \"name\": \"x\",\n  \"k\": ,\n}");
        assert_eq!(e.kind, ScenarioErrorKind::Syntax);
        assert_eq!((e.line, e.col), (3, 8));
    }

    #[test]
    fn unknown_key_is_rejected_with_position() {
        let e = compile_err("{\n  \"name\": \"x\",\n  \"robots\": 4,\n}");
        assert_eq!(e.kind, ScenarioErrorKind::UnknownKey);
        assert_eq!(e.line, 3);
        assert!(e.message.contains("\"robots\""), "{}", e.message);
        assert!(e.message.contains("expected one of"), "{}", e.message);
    }

    #[test]
    fn duplicate_key_is_rejected() {
        let e = compile_err("{ \"name\": \"x\", \"k\": 2,\n  \"k\": 3 }");
        assert_eq!(e.kind, ScenarioErrorKind::DuplicateKey);
        assert_eq!(e.line, 2);
    }

    #[test]
    fn bad_types_are_rejected_with_position() {
        let e = compile_err("{ \"name\": \"x\",\n  \"k\": \"two\" }");
        assert_eq!(e.kind, ScenarioErrorKind::BadType);
        assert_eq!(e.line, 2);
        assert!(e.message.contains("must be a number"), "{}", e.message);

        let e = compile_err("{ \"name\": 7 }");
        assert_eq!(e.kind, ScenarioErrorKind::BadType);
        assert!(e.message.contains("must be a string"), "{}", e.message);
    }

    #[test]
    fn overlapping_regions_are_rejected() {
        let e = compile_err(
            r#"{ "name": "x", "regions": [
                { "rect": [0, 0, 200, 200], "density": 2.0 },
                { "rect": [100, 100, 300, 300], "density": 3.0 },
            ] }"#,
        );
        assert_eq!(e.kind, ScenarioErrorKind::OverlappingRegions);
        assert_eq!(e.line, 3);
        assert!(e.message.contains("overlaps"), "{}", e.message);
    }

    #[test]
    fn timeline_event_after_sim_end_is_rejected() {
        let e = compile_err(
            "{ \"name\": \"x\", \"timeline\": [\n  { \"at_s\": 65000, \"attrition\": 1 },\n] }",
        );
        assert_eq!(e.kind, ScenarioErrorKind::EventAfterSimEnd);
        assert_eq!(e.line, 2);
        assert!(e.message.contains("after the simulation"), "{}", e.message);
    }

    #[test]
    fn negative_rates_are_rejected() {
        let e = compile_err("{ \"name\": \"x\", \"faults\": { \"report_loss\": -0.1 } }");
        assert_eq!(e.kind, ScenarioErrorKind::NegativeRate);

        let e = compile_err(
            "{ \"name\": \"x\", \"timeline\": [ { \"at_s\": -5, \"attrition\": 1 } ] }",
        );
        assert_eq!(e.kind, ScenarioErrorKind::NegativeRate);

        let e = compile_err(
            r#"{ "name": "x", "regions": [ { "rect": [0,0,1,1], "density": -4.0 } ] }"#,
        );
        assert_eq!(e.kind, ScenarioErrorKind::NegativeRate);
    }

    #[test]
    fn degenerate_geometry_is_rejected() {
        let e = compile_err(r#"{ "name": "x", "regions": [ { "rect": [200, 0, 100, 100] } ] }"#);
        assert_eq!(e.kind, ScenarioErrorKind::BadValue);
        assert!(e.message.contains("no area"), "{}", e.message);

        // Clockwise polygon.
        let e = compile_err(
            r#"{ "name": "x", "regions": [
                { "poly": [[0, 0], [0, 100], [100, 100]], "density": 2.0 } ] }"#,
        );
        assert_eq!(e.kind, ScenarioErrorKind::BadValue);
        assert!(e.message.contains("counter-clockwise"), "{}", e.message);
    }

    #[test]
    fn timeline_discriminants_are_exclusive_and_required() {
        let e = compile_err("{ \"name\": \"x\", \"timeline\": [ { \"at_s\": 10 } ] }");
        assert_eq!(e.kind, ScenarioErrorKind::MissingKey);
        let e = compile_err(
            r#"{ "name": "x", "timeline": [
                { "at_s": 10, "attrition": 1, "blackout": [0,0,1,1] } ] }"#,
        );
        assert_eq!(e.kind, ScenarioErrorKind::MissingKey);
        assert!(e.message.contains("exactly one of"), "{}", e.message);
    }

    #[test]
    fn partition_must_heal_after_it_starts() {
        let e = compile_err(
            r#"{ "name": "x", "timeline": [
                { "from_s": 100, "until_s": 50,
                  "partition": [[0,0,1,1], [2,2,3,3]] } ] }"#,
        );
        assert_eq!(e.kind, ScenarioErrorKind::BadValue);
        assert!(e.message.contains("end after it starts"), "{}", e.message);
    }

    #[test]
    fn inert_regions_are_dropped() {
        let c = compile_ok(
            r#"{ "name": "x", "scale": 16.0, "regions": [
                { "name": "doc-only", "rect": [0, 0, 100, 100] },
                { "rect": [200, 200, 300, 300], "density": 2.0 },
            ] }"#,
        );
        assert_eq!(c.cfg.regions.len(), 1, "inert region dropped");
        assert_eq!(c.cfg.regions[0].density, 2.0);
    }

    #[test]
    fn inert_fault_plan_is_normalised_to_none() {
        let c = compile_ok(
            r#"{ "name": "x", "scale": 16.0,
                 "faults": { "report_loss": 0.0 }, "timeline": [] }"#,
        );
        assert_eq!(c.cfg.faults, None);
    }

    #[test]
    fn semantic_backstop_reports_validate_failures() {
        // Region lifetime below the failure timeout: only the full
        // config validator knows the timeout, so this lands as Invalid.
        let e = compile_err(
            r#"{ "name": "x", "regions": [
                { "rect": [0, 0, 100, 100], "mean_lifetime_s": 5.0 } ] }"#,
        );
        assert_eq!(e.kind, ScenarioErrorKind::Invalid);
        assert!(e.message.contains("failure-detection"), "{}", e.message);
    }

    #[test]
    fn display_formats_position() {
        let e = compile_err("{ \"name\": \"x\", \"bogus\": 1 }");
        let text = e.to_string();
        assert!(text.starts_with("1:"), "{text}");
        assert!(text.contains("bogus"), "{text}");
    }
}
