//! Scenario configuration and the paper's parameter presets.

use robonet_des::SimDuration;

use crate::fault::FaultPlan;
use robonet_geom::{Bounds, ConvexPolygon};
use robonet_radio::medium::{Fading, RangeTable};
use robonet_radio::MacParams;

/// Which coordination algorithm manages the robots (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// One static central manager at the field centre; failures are
    /// reported to it and forwarded to the closest robot (§3.1).
    Centralized,
    /// Equal-size static subareas, one robot per subarea acting as both
    /// manager and maintainer (§3.2).
    Fixed(PartitionKind),
    /// Dynamic (Voronoi) partition: sensors report to the currently
    /// closest robot (§3.3).
    Dynamic,
}

impl Algorithm {
    /// Short machine-friendly name for CSV output and CLI parsing,
    /// resolved through the coordination registry
    /// ([`crate::coord::registry`]) so names live in exactly one table.
    pub fn name(self) -> &'static str {
        crate::coord::coordinator_for(self).name()
    }

    /// Parses a machine name back to an algorithm via the same
    /// registry table: `Algorithm::parse(a.name()) == Some(a)` for
    /// every registered algorithm.
    pub fn parse(name: &str) -> Option<Self> {
        crate::coord::by_name(name).map(|e| e.algorithm)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the central manager chooses the maintainer robot for a failure
/// (centralized algorithm; an extension of the paper's §3.1 "closest
/// robot" rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// The robot whose last known location is closest to the failure —
    /// exactly the paper's rule.
    Nearest,
    /// Prefer the closest *idle* robot (robots piggyback their queue
    /// length on location updates); fall back to the overall closest
    /// when every robot is busy. An ablation of the paper's design: it
    /// trades a little extra distance for shorter repair delays under
    /// load.
    NearestIdle,
}

/// Partition shape for the fixed algorithm. The paper uses squares and
/// reports that hexagon-like partitions "show negligible difference"
/// (§4.3.1) — both are provided so that claim can be measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionKind {
    /// k × k equal squares (the paper's method).
    Square,
    /// Offset-row ("brick"/hexagonal) equal-area cells.
    Hex,
}

/// Full parameterisation of one simulation run.
///
/// Defaults ([`ScenarioConfig::paper`]) follow §4.1 of the paper:
/// 200 × 200 m² and 50 sensors per robot, 1 m/s robots, 63 m/250 m
/// transmission ranges, 16000 s expected lifetime, 64000 s simulation,
/// 10 s beacons, 3-period failure timeout, 20 m update threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Coordination algorithm under test.
    pub algorithm: Algorithm,
    /// Robots per field side; the fleet is `k²` robots (the paper uses
    /// k ∈ {2, 3, 4}, i.e. 4/9/16 robots).
    pub k: usize,
    /// Side length of the field area allotted per robot, in metres.
    pub area_per_robot_side: f64,
    /// Sensors deployed per robot-area.
    pub sensors_per_robot: usize,
    /// Per-class transmission ranges.
    pub ranges: RangeTable,
    /// Robot travel speed in m/s.
    pub robot_speed: f64,
    /// Mean sensor lifetime (exponential).
    pub mean_lifetime: SimDuration,
    /// Total simulated time.
    pub sim_time: SimDuration,
    /// Sensor beaconing period.
    pub beacon_period: SimDuration,
    /// Beacon periods of silence before a guardee is declared failed.
    pub failure_timeout_periods: u32,
    /// Distance a robot travels between location updates, in metres.
    pub update_threshold: f64,
    /// How long a guardian waits before re-reporting a still-missing
    /// guardee (covers lost reports; generous so normal repairs never
    /// double-report).
    pub report_retry: SimDuration,
    /// Optional broadcast optimisation for flooded location updates (the
    /// paper's §6 future work): a sensor relays only if it is at least
    /// this fraction of the sensor range away from the transmitter it
    /// heard (border-retransmit self-pruning). `None` = relay always.
    pub broadcast_prune: Option<f64>,
    /// Centralized dispatch rule (ignored by the distributed
    /// algorithms).
    pub dispatch: DispatchPolicy,
    /// Edge-of-range reception model ([`Fading::None`] reproduces the
    /// paper's fixed-range radio).
    pub fading: Fading,
    /// Sample the sensing-coverage fraction this often (`None` = off).
    /// Each sample costs an `O(field)` scan, so this is for analysis
    /// runs, not the figure sweeps.
    pub coverage_sample: Option<CoverageSampling>,
    /// Emit a [`TelemetrySample`](crate::trace::TraceEvent::TelemetrySample)
    /// of live gauges this often and run the online health monitor at
    /// each sample (`None` = off, the default — runs without sampling
    /// stay byte-identical to earlier versions).
    pub sample_every: Option<SimDuration>,
    /// Keep at most this many protocol-level [`trace`](crate::trace)
    /// events (0 = tracing off, the default).
    pub trace_capacity: usize,
    /// MAC/PHY parameters.
    pub mac: MacParams,
    /// Faults to inject into the maintenance system itself (`None` =
    /// the paper's fault-free assumptions). An inert plan (all rates
    /// zero, no breakdowns) is normalised to `None` by the harness, so
    /// `Some(FaultPlan::message_loss(0.0))` is bit-identical to `None`.
    pub faults: Option<FaultPlan>,
    /// Non-uniform deployment regions (scenario files only; empty for
    /// the paper's uniform field). Each region biases sensor placement
    /// by a density multiplier and may override the mean lifetime for
    /// sensors that land inside it. Regions must not overlap.
    pub regions: Vec<DeployRegion>,
    /// Name of the scenario file this config was compiled from, if any;
    /// recorded in the trace manifest for provenance.
    pub scenario_name: Option<String>,
    /// Root RNG seed; every stochastic component derives its own stream.
    pub seed: u64,
}

/// One non-uniform deployment region inside the field.
///
/// With no regions configured, deployment is uniform over the field and
/// draws exactly the historical RNG sequence. With regions, placement
/// switches to rejection sampling against the density surface (still on
/// the `"deploy"` stream), and sensors inside a region may use its
/// lifetime override instead of the global mean.
#[derive(Debug, Clone, PartialEq)]
pub struct DeployRegion {
    /// The region's area (convex, CCW).
    pub poly: ConvexPolygon,
    /// Relative deployment density versus the background's 1.0. Must be
    /// positive; 4.0 means sensors land here 4× as often per unit area.
    pub density: f64,
    /// Mean lifetime for sensors deployed inside this region (`None` =
    /// the global [`ScenarioConfig::mean_lifetime`]).
    pub mean_lifetime: Option<SimDuration>,
}

impl DeployRegion {
    /// `true` when the region changes nothing about a run: background
    /// density and no lifetime override. Inert regions are dropped at
    /// scenario compile time so they cannot perturb the RNG sequence.
    pub fn is_inert(&self) -> bool {
        self.density == 1.0 && self.mean_lifetime.is_none()
    }
}

/// Parameters for periodic coverage sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageSampling {
    /// Time between samples.
    pub period: SimDuration,
    /// Sensing radius of one sensor, in metres (distinct from the radio
    /// range; the paper does not fix it — 63 m is a natural default).
    pub sensing_range: f64,
    /// Lattice resolution per axis for the coverage estimate.
    pub resolution: usize,
}

impl Default for CoverageSampling {
    fn default() -> Self {
        CoverageSampling {
            period: SimDuration::from_secs(100.0),
            sensing_range: 63.0,
            resolution: 80,
        }
    }
}

impl ScenarioConfig {
    /// The paper's experimental setup (§4.1) for `k²` robots.
    pub fn paper(k: usize, algorithm: Algorithm) -> Self {
        ScenarioConfig {
            algorithm,
            k,
            area_per_robot_side: 200.0,
            sensors_per_robot: 50,
            ranges: RangeTable::default(),
            robot_speed: 1.0,
            mean_lifetime: SimDuration::from_secs(16_000.0),
            sim_time: SimDuration::from_secs(64_000.0),
            beacon_period: SimDuration::from_secs(10.0),
            failure_timeout_periods: 3,
            update_threshold: 20.0,
            report_retry: SimDuration::from_secs(1_200.0),
            broadcast_prune: None,
            dispatch: DispatchPolicy::Nearest,
            fading: Fading::None,
            coverage_sample: None,
            sample_every: None,
            trace_capacity: 0,
            mac: MacParams::default(),
            faults: None,
            regions: Vec::new(),
            scenario_name: None,
            seed: 1,
        }
    }

    /// Replaces the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a fault-injection plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Shrinks the time axis by `factor`: lifetime, simulated time *and*
    /// robot travel time (via speed) divide by it, keeping the expected
    /// number of failures per sensor and — crucially — the robots'
    /// utilisation (repair time × failure rate) unchanged, so all
    /// per-failure metrics match the full-scale run while finishing
    /// `factor`× faster. Distances (and therefore Figures 2–4) are
    /// unaffected. Used by tests and benches.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "scale factor must be >= 1");
        self.mean_lifetime = SimDuration::from_secs(self.mean_lifetime.as_secs_f64() / factor);
        self.sim_time = SimDuration::from_secs(self.sim_time.as_secs_f64() / factor);
        self.report_retry = SimDuration::from_secs(self.report_retry.as_secs_f64() / factor);
        self.robot_speed *= factor;
        self.faults = self.faults.map(|f| f.scaled(factor));
        for region in &mut self.regions {
            if let Some(m) = region.mean_lifetime {
                region.mean_lifetime = Some(SimDuration::from_secs(m.as_secs_f64() / factor));
            }
        }
        self
    }

    /// Number of robots (`k²`).
    pub fn n_robots(&self) -> usize {
        self.k * self.k
    }

    /// Number of sensors (`50 k²` with paper parameters).
    pub fn n_sensors(&self) -> usize {
        self.sensors_per_robot * self.n_robots()
    }

    /// Field side length in metres (`200 k` with paper parameters).
    pub fn side(&self) -> f64 {
        self.area_per_robot_side * self.k as f64
    }

    /// The deployment field.
    pub fn bounds(&self) -> Bounds {
        Bounds::square(self.side())
    }

    /// Guardee silence threshold (`3 × beacon_period` in the paper).
    pub fn failure_timeout(&self) -> SimDuration {
        self.beacon_period * u64::from(self.failure_timeout_periods)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be at least 1".into());
        }
        if self.sensors_per_robot == 0 {
            return Err("need at least one sensor per robot".into());
        }
        // One robot per partition cell: catch a mismatched fleet here
        // with a clear message instead of an index fault deep inside
        // world construction.
        crate::coord::validate_fleet(crate::coord::coordinator_for(self.algorithm), self)?;
        if !(self.robot_speed.is_finite() && self.robot_speed > 0.0) {
            return Err(format!(
                "robot speed must be positive, got {}",
                self.robot_speed
            ));
        }
        if self.update_threshold <= 0.0 {
            return Err("update threshold must be positive".into());
        }
        if self.update_threshold >= self.ranges.sensor {
            return Err(format!(
                "update threshold {} must be below the sensor range {} \
                 (the paper uses < 1/3 of it so moving robots stay reachable)",
                self.update_threshold, self.ranges.sensor
            ));
        }
        if self.mean_lifetime <= self.failure_timeout() {
            return Err("mean lifetime must exceed the failure-detection timeout".into());
        }
        if self.sim_time <= self.beacon_period {
            return Err("simulation shorter than one beacon period".into());
        }
        if let Some(f) = self.broadcast_prune {
            if !(0.0..1.0).contains(&f) {
                return Err(format!("broadcast prune fraction {f} must be in [0, 1)"));
            }
        }
        if let Fading::SmoothEdge { inner } = self.fading {
            if !(0.0..=1.0).contains(&inner) {
                return Err(format!("fading inner fraction {inner} must be in [0, 1]"));
            }
        }
        if let Some(every) = self.sample_every {
            if every.as_secs_f64() <= 0.0 {
                return Err(format!(
                    "telemetry sample period must be positive, got {} s",
                    every.as_secs_f64()
                ));
            }
        }
        if let Some(faults) = &self.faults {
            faults.validate()?;
            for event in &faults.timeline {
                if event.at().as_secs_f64() > self.sim_time.as_secs_f64() {
                    return Err(format!(
                        "timeline {} at {} s is after the simulation ends ({} s)",
                        event.label(),
                        event.at().as_secs_f64(),
                        self.sim_time.as_secs_f64()
                    ));
                }
            }
        }
        for (i, region) in self.regions.iter().enumerate() {
            if !(region.density.is_finite() && region.density > 0.0) {
                return Err(format!(
                    "region {i} density {} must be positive and finite",
                    region.density
                ));
            }
            if let Some(m) = region.mean_lifetime {
                if m <= self.failure_timeout() {
                    return Err(format!(
                        "region {i} mean lifetime must exceed the failure-detection timeout"
                    ));
                }
            }
            for (j, earlier) in self.regions[..i].iter().enumerate() {
                if region.poly.intersection(&earlier.poly).is_some() {
                    return Err(format!("regions {j} and {i} overlap"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_section_4_1() {
        let c = ScenarioConfig::paper(4, Algorithm::Centralized);
        assert_eq!(c.n_robots(), 16);
        assert_eq!(c.n_sensors(), 800);
        assert_eq!(c.side(), 800.0);
        assert_eq!(c.ranges.sensor, 63.0);
        assert_eq!(c.ranges.robot, 250.0);
        assert_eq!(c.robot_speed, 1.0);
        assert_eq!(c.mean_lifetime, SimDuration::from_secs(16_000.0));
        assert_eq!(c.sim_time, SimDuration::from_secs(64_000.0));
        assert_eq!(c.beacon_period, SimDuration::from_secs(10.0));
        assert_eq!(c.failure_timeout(), SimDuration::from_secs(30.0));
        assert_eq!(c.update_threshold, 20.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaling_preserves_failure_expectation() {
        let c = ScenarioConfig::paper(2, Algorithm::Dynamic).scaled(8.0);
        let expected_failures_per_sensor = c.sim_time.as_secs_f64() / c.mean_lifetime.as_secs_f64();
        assert!((expected_failures_per_sensor - 4.0).abs() < 1e-9);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = ScenarioConfig::paper(2, Algorithm::Dynamic);
        c.k = 0;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::paper(2, Algorithm::Dynamic);
        c.update_threshold = 100.0;
        assert!(c.validate().unwrap_err().contains("update threshold"));

        let mut c = ScenarioConfig::paper(2, Algorithm::Dynamic);
        c.robot_speed = -1.0;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::paper(2, Algorithm::Dynamic);
        c.broadcast_prune = Some(1.5);
        assert!(c.validate().is_err());

        let c = ScenarioConfig::paper(2, Algorithm::Dynamic).with_faults(FaultPlan {
            report_loss: -0.5,
            ..FaultPlan::default()
        });
        assert!(c.validate().unwrap_err().contains("report loss"));
    }

    #[test]
    fn scaling_reaches_the_fault_plan() {
        let c = ScenarioConfig::paper(2, Algorithm::Dynamic)
            .with_faults(FaultPlan {
                breakdown_mean: Some(SimDuration::from_secs(8_000.0)),
                ..FaultPlan::default()
            })
            .scaled(8.0);
        assert_eq!(
            c.faults.unwrap().breakdown_mean,
            Some(SimDuration::from_secs(1_000.0))
        );
    }

    #[test]
    fn region_validation_catches_bad_fields() {
        use robonet_geom::Point;
        let square = |x0: f64, y0: f64, side: f64| {
            ConvexPolygon::new(vec![
                Point::new(x0, y0),
                Point::new(x0 + side, y0),
                Point::new(x0 + side, y0 + side),
                Point::new(x0, y0 + side),
            ])
            .unwrap()
        };

        let mut c = ScenarioConfig::paper(2, Algorithm::Dynamic);
        c.regions.push(DeployRegion {
            poly: square(0.0, 0.0, 100.0),
            density: -2.0,
            mean_lifetime: None,
        });
        assert!(c.validate().unwrap_err().contains("density"));

        let mut c = ScenarioConfig::paper(2, Algorithm::Dynamic);
        c.regions.push(DeployRegion {
            poly: square(0.0, 0.0, 100.0),
            density: 2.0,
            mean_lifetime: Some(SimDuration::from_secs(10.0)),
        });
        assert!(c.validate().unwrap_err().contains("mean lifetime"));

        let mut c = ScenarioConfig::paper(2, Algorithm::Dynamic);
        c.regions.push(DeployRegion {
            poly: square(0.0, 0.0, 100.0),
            density: 2.0,
            mean_lifetime: None,
        });
        c.regions.push(DeployRegion {
            poly: square(50.0, 50.0, 100.0),
            density: 3.0,
            mean_lifetime: None,
        });
        assert!(c.validate().unwrap_err().contains("overlap"));

        // Disjoint regions with sane fields pass.
        let mut c = ScenarioConfig::paper(2, Algorithm::Dynamic);
        c.regions.push(DeployRegion {
            poly: square(0.0, 0.0, 100.0),
            density: 4.0,
            mean_lifetime: Some(SimDuration::from_secs(8_000.0)),
        });
        c.regions.push(DeployRegion {
            poly: square(200.0, 200.0, 100.0),
            density: 0.5,
            mean_lifetime: None,
        });
        assert!(c.validate().is_ok());
    }

    #[test]
    fn timeline_events_after_sim_end_rejected() {
        use crate::fault::TimedFault;
        let mut c = ScenarioConfig::paper(2, Algorithm::Dynamic).with_faults(FaultPlan {
            timeline: vec![TimedFault::Attrition {
                at: SimDuration::from_secs(100_000.0),
                robots: 1,
            }],
            ..FaultPlan::default()
        });
        assert!(c.validate().unwrap_err().contains("after the simulation"));
        // Scaling pulls the event back inside the horizon along with
        // sim_time, so the relationship is scale-invariant.
        c.sim_time = SimDuration::from_secs(128_000.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaling_reaches_region_lifetimes() {
        use robonet_geom::Point;
        let mut c = ScenarioConfig::paper(2, Algorithm::Dynamic);
        c.regions.push(DeployRegion {
            poly: ConvexPolygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(100.0, 100.0),
                Point::new(0.0, 100.0),
            ])
            .unwrap(),
            density: 2.0,
            mean_lifetime: Some(SimDuration::from_secs(8_000.0)),
        });
        let scaled = c.scaled(8.0);
        assert_eq!(
            scaled.regions[0].mean_lifetime,
            Some(SimDuration::from_secs(1_000.0))
        );
        assert_eq!(scaled.regions[0].density, 2.0, "density is timeless");
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::Centralized.name(), "centralized");
        assert_eq!(Algorithm::Fixed(PartitionKind::Square).name(), "fixed");
        assert_eq!(Algorithm::Fixed(PartitionKind::Hex).name(), "fixed-hex");
        assert_eq!(Algorithm::Dynamic.to_string(), "dynamic");
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn shrinking_scale_rejected() {
        let _ = ScenarioConfig::paper(2, Algorithm::Dynamic).scaled(0.5);
    }
}
