//! A flow-level (non-packet) model of the three coordination
//! algorithms, for scalability studies beyond what packet-level
//! simulation can afford.
//!
//! The packet simulator ([`crate::Simulation`]) prices every MAC frame;
//! this model replaces the network with calibrated closed-form costs
//! while keeping the *coordination* dynamics exact: the same exponential
//! failure process, the same FCFS robot queues and kinematics
//! (`robonet-robot`), the same manager selection rules. Message costs
//! are computed from geometry:
//!
//! - hops ≈ `ceil(distance / (progress × sensor_range))`, with the
//!   greedy-progress factor calibrated against the packet simulator
//!   (≈ 0.75 at the paper's density — see the cross-validation test),
//! - location-update floods cost the population of the relay region
//!   (subarea for fixed; Voronoi cell plus border band for dynamic),
//! - detection latency = failure timeout + half a beacon period.
//!
//! Use it to extend the paper's robot-count axis (the `scalability`
//! example runs fleets of up to 100 robots in milliseconds); trust it
//! only where the cross-validation holds.

use robonet_des::{rng, sampler, NodeId, Scheduler, SimTime};
use robonet_geom::partition::Partition;
use robonet_geom::{deploy, Point};
use robonet_robot::{ReplacementTask, RobotState};
use robonet_wsn::failure::FailureProcess;

use crate::config::ScenarioConfig;
use crate::coord::{self, FlowCtx};
use crate::fault::{FaultInjector, FaultKind, TimedFault};
use crate::harness::{region_lifetime_factors, scale_failure_time, weighted_deployment};
use crate::obs::timeline::{Checkpoint, HealthMonitor, TelemetrySnapshot};
use crate::obs::{EventSink, NullSink};
use crate::trace::TraceEvent;

/// Greedy geographic routing makes roughly this fraction of the radio
/// range of forward progress per hop at the paper's deployment density
/// (calibrated against the packet simulator).
pub const GREEDY_PROGRESS: f64 = 0.75;

/// Records `ev` into the sink, teeing it through the telemetry health
/// ledger when sampling is active.
fn observe(monitor: &mut Option<HealthMonitor>, sink: &mut dyn EventSink, ev: &TraceEvent) {
    if let Some(m) = monitor.as_mut() {
        m.ingest(ev);
    }
    sink.record(ev);
}

/// Flow-level results, mirroring the packet simulator's [`crate::Summary`]
/// where the models overlap.
#[derive(Debug, Clone, PartialEq)]
pub struct FastSummary {
    /// Failures that occurred.
    pub failures: u64,
    /// Failures repaired.
    pub replacements: u64,
    /// Figure 2: mean travel per failure (m).
    pub avg_travel_per_failure: f64,
    /// Figure 3: mean hops per failure report.
    pub avg_report_hops: f64,
    /// Figure 3: mean hops per repair request (centralized only).
    pub avg_request_hops: Option<f64>,
    /// Figure 4: location-update transmissions per failure.
    pub loc_update_tx_per_failure: f64,
    /// Mean dispatch→installation delay (s).
    pub avg_repair_delay: f64,
    /// Failures whose report exhausted its retry budget and was never
    /// delivered (fault layer; always 0 without an active fault plan).
    pub report_orphans: u64,
}

#[derive(Debug)]
enum Event {
    Fail {
        sensor: u32,
        incarnation: u32,
    },
    /// The failure has been detected and the report reaches a manager.
    /// `attempt` is 1-based; retries only occur under an active fault
    /// plan.
    Report {
        sensor: u32,
        attempt: u32,
    },
    Arrive {
        robot: u32,
        leg: u64,
    },
    /// Periodic telemetry sample (only with a live sink and
    /// [`ScenarioConfig::sample_every`] set — samples exist solely as
    /// trace events at flow level).
    Sample,
    /// A scheduled fault-timeline event fires (index into
    /// [`crate::fault::FaultPlan::timeline`]).
    Timeline {
        index: u32,
    },
}

/// Runs the flow-level model for `cfg`.
///
/// ```
/// use robonet_core::{fastsim, Algorithm, ScenarioConfig};
/// // 36 robots, 1800 sensors — milliseconds at flow level.
/// let cfg = ScenarioConfig::paper(6, Algorithm::Dynamic).scaled(8.0);
/// let s = fastsim::run(&cfg);
/// assert!(s.replacements > 0);
/// ```
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run(cfg: &ScenarioConfig) -> FastSummary {
    run_with_sink(cfg, &mut NullSink)
}

/// Runs the flow-level model and assembles per-failure repair-lifecycle
/// spans alongside the summary. The flow model emits no `Detected` /
/// `ReportDelivered` events, so the detection, report-transit and
/// dispatch-decision stages of each span are `None`; travel and install
/// are populated from the robot leg events.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_with_spans(cfg: &ScenarioConfig) -> (FastSummary, crate::obs::SpanReport) {
    let mut sink = crate::obs::SpanSink::new();
    let summary = run_with_sink(cfg, &mut sink);
    (summary, sink.into_report())
}

/// Runs the flow-level model, streaming coarse-grained trace events
/// (`Failure`, `Dispatched`, `RobotLegStarted`/`Ended`, `Replaced`)
/// into `sink`. Packet-level events (`Detected`, `ReportDelivered`,
/// `PacketDropped`, `LocUpdateFlooded`) never appear — the flow model
/// has no packets.
///
/// Fault support is deliberately minimal at flow level: an active
/// [`crate::fault::FaultPlan`] applies its report/dispatch loss
/// probabilities to the (instant) report leg — a lost report retries
/// with the same exponential backoff as the packet simulator until the
/// attempt budget runs out, at which point the failure is counted in
/// [`FastSummary::report_orphans`] and never repaired. Robot breakdowns,
/// slowdowns and location-update loss are *ignored* here (there are no
/// per-packet updates and no modelled robot health); use the packet
/// simulator to study those.
///
/// Of the scheduled [`crate::fault::FaultPlan::timeline`], the flow
/// model executes the subset its abstractions can express:
/// [`TimedFault::Blackout`] (every live sensor inside the region fails
/// at the scheduled time) and [`TimedFault::LossRate`] (the injector's
/// loss probabilities switch). [`TimedFault::Partition`] and
/// [`TimedFault::Attrition`] are *ignored* — there are no per-hop
/// frames to block and no modelled robot health; use the packet
/// simulator for those. Deployment regions apply in full (density
/// weighting and per-region lifetimes), matching the packet simulator's
/// placement and failure processes draw for draw.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_with_sink(cfg: &ScenarioConfig, sink: &mut dyn EventSink) -> FastSummary {
    if let Err(e) = cfg.validate() {
        panic!("invalid scenario: {e}");
    }
    let sink_enabled = sink.is_enabled();
    let coordinator = coord::coordinator_for(cfg.algorithm);
    let bounds = cfg.bounds();
    let n_sensors = cfg.n_sensors();
    let n_robots = cfg.n_robots();
    let sensor_range = cfg.ranges.sensor;

    let mut deploy_rng = rng::stream(cfg.seed, "deploy");
    let sensors = if cfg.regions.is_empty() {
        deploy::uniform(&mut deploy_rng, &bounds, n_sensors)
    } else {
        weighted_deployment(&mut deploy_rng, &bounds, n_sensors, &cfg.regions)
    };
    let lifetime_factor = region_lifetime_factors(cfg, &sensors);

    let partition: Option<Box<dyn Partition>> = coordinator.build_partition(bounds, cfg.k);
    let sensor_subarea: Vec<usize> = match &partition {
        Some(p) => sensors.iter().map(|&s| p.subarea_of(s)).collect(),
        None => vec![0; n_sensors],
    };
    let subarea_population: Vec<f64> = match &partition {
        Some(p) => {
            let mut counts = vec![0f64; p.len()];
            for &sub in &sensor_subarea {
                counts[sub] += 1.0;
            }
            counts
        }
        None => Vec::new(),
    };

    let mut robot_rng = rng::stream(cfg.seed, "robots");
    let robot_pos: Vec<Point> = coordinator.initial_robot_positions(
        partition.as_deref(),
        &bounds,
        n_robots,
        &mut robot_rng,
    );
    let mut robots: Vec<RobotState> = robot_pos
        .iter()
        .enumerate()
        .map(|(r, &loc)| RobotState::new(NodeId::new((n_sensors + r) as u32), loc, cfg.robot_speed))
        .collect();
    let mut leg_seq = vec![0u64; n_robots];
    let manager_loc = bounds.center();

    // Same normalization as the packet simulator: an inert plan is no
    // plan at all, so its runs match fault-free runs bit for bit.
    let mut faults = cfg
        .faults
        .clone()
        .filter(|p| !p.is_inert())
        .map(|p| FaultInjector::new(cfg.seed, p));

    let mut failure_proc =
        FailureProcess::new(cfg.mean_lifetime, rng::stream(cfg.seed, "lifetimes"));
    let mut detect_rng = rng::stream(cfg.seed, "detect");
    let mut sched: Scheduler<Event> = Scheduler::with_horizon(SimTime::ZERO + cfg.sim_time);
    let mut incarnation = vec![0u32; n_sensors];
    let mut alive = vec![true; n_sensors];

    // Flow-level telemetry samples exist only as trace events, so with
    // no sink there is nowhere for them to go and the sampler never
    // schedules (summaries are unaffected either way).
    let sampling = if sink_enabled { cfg.sample_every } else { None };
    let mut monitor = sampling.map(|_| HealthMonitor::new());
    if let Some(every) = sampling {
        sched.schedule_at(SimTime::ZERO + every, Event::Sample);
    }

    for i in 0..n_sensors {
        let at = scale_failure_time(
            SimTime::ZERO,
            failure_proc.sample_failure_at(SimTime::ZERO),
            lifetime_factor.get(i).copied().unwrap_or(1.0),
        );
        if at <= sched.horizon() {
            sched.schedule_at(
                at,
                Event::Fail {
                    sensor: i as u32,
                    incarnation: 0,
                },
            );
        }
    }
    if let Some(inj) = faults.as_ref() {
        for (i, event) in inj.plan.timeline.iter().enumerate() {
            sched.schedule_at(
                SimTime::ZERO + event.at(),
                Event::Timeline { index: i as u32 },
            );
        }
    }

    let density = n_sensors as f64 / bounds.area();
    // The closed-form message costs live in the coordinator's flow
    // hooks; this context hands them the precomputed geometry facts.
    let flow = FlowCtx {
        manager_loc,
        manager_range: cfg.ranges.manager,
        hop_unit: GREEDY_PROGRESS * sensor_range,
        n_sensors,
        n_robots,
        area: bounds.area(),
        density,
        update_threshold: cfg.update_threshold,
        subarea_population: &subarea_population,
    };

    let mut out = FastSummary {
        failures: 0,
        replacements: 0,
        avg_travel_per_failure: 0.0,
        avg_report_hops: 0.0,
        avg_request_hops: coordinator.uses_manager().then_some(0.0),
        loc_update_tx_per_failure: 0.0,
        avg_repair_delay: 0.0,
        report_orphans: 0,
    };
    let mut travel_sum = 0.0;
    let mut report_hop_sum = 0.0;
    let mut request_hop_sum = 0.0;
    let mut requests = 0u64;
    let mut update_tx = 0.0;
    let mut delay_sum = 0.0;

    // Cost of the location updates generated by one leg of travel.
    let mut leg_update_cost = |robots: &[RobotState], r: usize, leg_dist: f64| {
        let updates = (leg_dist / cfg.update_threshold).floor() + 1.0; // + arrival
        update_tx += updates * coordinator.flow_update_cost(&flow, r, robots[r].last_update_loc);
    };

    while let Some(ev) = sched.next_event() {
        let now = sched.now();
        match ev {
            Event::Fail {
                sensor,
                incarnation: inc,
            } => {
                let s = sensor as usize;
                if incarnation[s] != inc || !alive[s] {
                    continue;
                }
                alive[s] = false;
                out.failures += 1;
                if sink_enabled {
                    observe(
                        &mut monitor,
                        sink,
                        &TraceEvent::Failure {
                            t: now.as_secs_f64(),
                            sensor: NodeId::new(sensor),
                        },
                    );
                }

                // Detection: timeout + residual beacon phase.
                let detect_delay = cfg.failure_timeout()
                    + sampler::uniform_duration(&mut detect_rng, cfg.beacon_period);
                sched.schedule_at(now + detect_delay, Event::Report { sensor, attempt: 1 });
            }
            Event::Report { sensor, attempt } => {
                let s = sensor as usize;
                let failed_loc = sensors[s];

                // Injected loss on the report (and, for manager
                // algorithms, the follow-up dispatch request): the
                // whole instant chain fails and the guardian's backoff
                // timer re-drives it, until the budget runs out and the
                // failure becomes an explicit orphan.
                if let Some(inj) = faults.as_mut() {
                    let lost = inj.drop_message(FaultKind::ReportLoss)
                        || (coordinator.uses_manager()
                            && inj.drop_message(FaultKind::DispatchLoss));
                    if lost {
                        if attempt >= inj.plan.max_report_attempts {
                            out.report_orphans += 1;
                        } else {
                            let backoff = FaultInjector::report_backoff(cfg.report_retry, attempt);
                            sched.schedule_at(
                                now + backoff,
                                Event::Report {
                                    sensor,
                                    attempt: attempt + 1,
                                },
                            );
                        }
                        continue;
                    }
                }

                // Report + dispatch (instant at flow level): the
                // coordinator selects the robot and prices the report
                // (and request) legs.
                let locs: Vec<Point> = robots.iter().map(|rb| rb.position_at(now)).collect();
                let fd = coordinator.flow_report(&flow, failed_loc, sensor_subarea[s], &locs);
                report_hop_sum += fd.report_hops;
                if let Some(rq) = fd.request_hops {
                    request_hop_sum += rq;
                    requests += 1;
                }
                let r = fd.robot;

                let task = ReplacementTask {
                    failed: NodeId::new(sensor),
                    loc: failed_loc,
                    dispatched_at: now,
                };
                let leg = robots[r].enqueue(task, now);
                if sink_enabled {
                    observe(
                        &mut monitor,
                        sink,
                        &TraceEvent::Dispatched {
                            t: now.as_secs_f64(),
                            robot: robots[r].id,
                            failed: NodeId::new(sensor),
                            departed: leg.is_some(),
                        },
                    );
                }
                if let Some(leg) = leg {
                    leg_seq[r] += 1;
                    if sink_enabled {
                        sink.record(&TraceEvent::RobotLegStarted {
                            t: leg.start().as_secs_f64(),
                            robot: robots[r].id,
                            failed: NodeId::new(sensor),
                            from: leg.from(),
                            to: leg.to(),
                        });
                    }
                    leg_update_cost(&robots, r, leg.distance());
                    robots[r].last_update_loc = leg.to();
                    sched.schedule_at(
                        leg.arrival(),
                        Event::Arrive {
                            robot: r as u32,
                            leg: leg_seq[r],
                        },
                    );
                }
            }
            Event::Arrive { robot, leg } => {
                let r = robot as usize;
                if leg_seq[r] != leg {
                    continue;
                }
                let travel = robots[r]
                    .current_leg()
                    .expect("arriving robot has a leg")
                    .distance();
                let (task, next) = robots[r].arrive(now);
                if sink_enabled {
                    sink.record(&TraceEvent::RobotLegEnded {
                        t: now.as_secs_f64(),
                        robot: robots[r].id,
                        travel,
                    });
                    observe(
                        &mut monitor,
                        sink,
                        &TraceEvent::Replaced {
                            t: now.as_secs_f64(),
                            robot: robots[r].id,
                            sensor: task.failed,
                            travel,
                            loc: task.loc,
                        },
                    );
                }
                let s = task.failed.index();
                alive[s] = true;
                incarnation[s] += 1;
                out.replacements += 1;
                travel_sum += travel;
                delay_sum += now.duration_since(task.dispatched_at).as_secs_f64();
                let at = scale_failure_time(
                    now,
                    failure_proc.sample_failure_at(now),
                    lifetime_factor.get(s).copied().unwrap_or(1.0),
                );
                if at <= sched.horizon() {
                    sched.schedule_at(
                        at,
                        Event::Fail {
                            sensor: s as u32,
                            incarnation: incarnation[s],
                        },
                    );
                }
                if let Some(next_leg) = next {
                    leg_seq[r] += 1;
                    if sink_enabled {
                        sink.record(&TraceEvent::RobotLegStarted {
                            t: next_leg.start().as_secs_f64(),
                            robot: robots[r].id,
                            failed: robots[r]
                                .current_task()
                                .expect("departing robot has a task")
                                .failed,
                            from: next_leg.from(),
                            to: next_leg.to(),
                        });
                    }
                    leg_update_cost(&robots, r, next_leg.distance());
                    robots[r].last_update_loc = next_leg.to();
                    sched.schedule_at(
                        next_leg.arrival(),
                        Event::Arrive {
                            robot: r as u32,
                            leg: leg_seq[r],
                        },
                    );
                }
            }
            Event::Timeline { index } => {
                let Some(inj) = faults.as_mut() else {
                    continue;
                };
                match inj.plan.timeline[index as usize].clone() {
                    TimedFault::Blackout { region, .. } => {
                        // Re-queue the kills as ordinary Fail events at
                        // `now` so they take the exact detection path a
                        // natural failure takes.
                        for (s, &alive_now) in alive.iter().enumerate() {
                            if alive_now && region.contains(sensors[s]) {
                                sched.schedule_at(
                                    now,
                                    Event::Fail {
                                        sensor: s as u32,
                                        incarnation: incarnation[s],
                                    },
                                );
                            }
                        }
                    }
                    TimedFault::LossRate {
                        report,
                        dispatch,
                        update,
                        ..
                    } => inj.set_loss_rates(report, dispatch, update),
                    // No per-hop frames to block, no modelled robot
                    // health: these exist only at packet level.
                    TimedFault::Partition { .. } | TimedFault::Attrition { .. } => {}
                }
            }
            Event::Sample => {
                let every = sampling.expect("Sample events only exist when sampling");
                sched.schedule_after(every, Event::Sample);
                let t = now.as_secs_f64();
                let alive_count = alive.iter().filter(|&&a| a).count() as u32;
                let cov = cfg.coverage_sample.unwrap_or_default();
                let coverage = robonet_wsn::coverage::coverage_fraction(
                    &bounds,
                    &sensors,
                    &alive,
                    cov.sensing_range,
                    cov.resolution,
                );
                let ledger = monitor.as_ref().expect("sampling implies a monitor");
                let stages = ledger.stage_counts();
                let sample = TelemetrySnapshot {
                    alive: alive_count,
                    down: n_sensors as u32 - alive_count,
                    failures: out.failures,
                    replaced: out.replacements,
                    coverage,
                    open_failure: stages[0],
                    open_detected: stages[1],
                    open_reported: stages[2],
                    open_dispatched: stages[3],
                    robot_queues: robots.iter().map(|rb| rb.queue_len() as u32).collect(),
                    robot_busy: robots.iter().map(|rb| rb.current_leg().is_some()).collect(),
                    // The flow model has no packets and no shadow
                    // in-flight ledger.
                    in_flight: 0,
                    sched_queue: sched.pending() as u32,
                };
                sink.record(&TraceEvent::TelemetrySample { t, sample });
                let violations = ledger.check(
                    t,
                    &Checkpoint {
                        failures: out.failures,
                        replacements: out.replacements,
                        open_spans: None,
                        robots_down: 0,
                    },
                );
                for violation in violations {
                    sink.record(&violation);
                }
            }
        }
    }

    let reports = out.failures.max(1) as f64;
    let replaced = out.replacements.max(1) as f64;
    out.avg_travel_per_failure = travel_sum / replaced;
    out.avg_report_hops = report_hop_sum / reports;
    if let Some(rq) = out.avg_request_hops.as_mut() {
        *rq = request_hop_sum / requests.max(1) as f64;
    }
    out.loc_update_tx_per_failure = update_tx / replaced;
    out.avg_repair_delay = delay_sum / replaced;
    sink.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, PartitionKind};
    use crate::fault::{FaultPlan, TimedFault};

    #[test]
    fn inert_fault_plan_matches_fault_free_exactly() {
        let cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
            .with_seed(5)
            .scaled(16.0);
        let mut with_inert = cfg.clone();
        with_inert.faults = Some(FaultPlan::default());
        assert_eq!(run(&cfg), run(&with_inert));
    }

    #[test]
    fn report_loss_is_deterministic_and_accounted() {
        let mut cfg = ScenarioConfig::paper(2, Algorithm::Centralized)
            .with_seed(5)
            .scaled(16.0);
        // An extreme plan so orphans actually occur in a short run.
        let mut plan = FaultPlan::message_loss(0.9);
        plan.max_report_attempts = 2;
        cfg.faults = Some(plan);
        let a = run(&cfg);
        assert_eq!(a, run(&cfg), "same seed + plan must reproduce exactly");
        assert!(a.report_orphans > 0, "90% loss with 2 attempts must orphan");
        assert!(
            a.replacements + a.report_orphans <= a.failures,
            "every failure is replaced, orphaned, or still in flight"
        );
    }

    #[test]
    fn moderate_loss_with_retries_loses_nothing_silently() {
        let mut cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
            .with_seed(7)
            .scaled(16.0);
        cfg.faults = Some(FaultPlan::message_loss(0.10));
        let s = run(&cfg);
        let free = {
            let mut c = cfg.clone();
            c.faults = None;
            run(&c)
        };
        // 10% loss under a 6-attempt budget: orphaning a report needs 6
        // consecutive losses (p = 1e-6), so recovery should keep the
        // replacement count at the fault-free level.
        assert_eq!(s.report_orphans, 0);
        // Retry delays shift when replaced sensors fail again, so the
        // totals drift; the *repair ratio* is what must hold up.
        let ratio = |x: &FastSummary| x.replacements as f64 / x.failures as f64;
        assert!(
            ratio(&s) >= 0.95 * ratio(&free),
            "retries must recover nearly all lost reports: {:.3} vs {:.3}",
            ratio(&s),
            ratio(&free)
        );
    }

    #[test]
    fn cross_validates_against_packet_simulator() {
        // The flow model must land near the packet simulator for the
        // figures' primary metrics at a configuration both can run.
        let cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
            .with_seed(5)
            .scaled(16.0);
        let fast = run(&cfg);
        let full = crate::Simulation::run(cfg).metrics.summary();
        let travel_err = (fast.avg_travel_per_failure - full.avg_travel_per_failure).abs()
            / full.avg_travel_per_failure;
        assert!(travel_err < 0.15, "travel error {travel_err:.2}");
        let hop_err = (fast.avg_report_hops - full.avg_report_hops).abs() / full.avg_report_hops;
        assert!(hop_err < 0.40, "hop error {hop_err:.2}");
        let upd_err = (fast.loc_update_tx_per_failure - full.loc_update_tx_per_failure).abs()
            / full.loc_update_tx_per_failure;
        assert!(upd_err < 0.40, "update-cost error {upd_err:.2}");
    }

    #[test]
    fn preserves_figure_orderings() {
        let run_alg = |alg| run(&ScenarioConfig::paper(3, alg).with_seed(2).scaled(8.0));
        let fixed = run_alg(Algorithm::Fixed(PartitionKind::Square));
        let dynamic = run_alg(Algorithm::Dynamic);
        let centralized = run_alg(Algorithm::Centralized);
        // Fig. 2 ordering.
        assert!(fixed.avg_travel_per_failure >= dynamic.avg_travel_per_failure * 0.98);
        // Fig. 4 ordering.
        assert!(centralized.loc_update_tx_per_failure < fixed.loc_update_tx_per_failure);
        assert!(fixed.loc_update_tx_per_failure < dynamic.loc_update_tx_per_failure);
        // Fig. 3: distributed reports are short.
        assert!(dynamic.avg_report_hops < 5.0);
    }

    #[test]
    fn centralized_hops_scale_with_k() {
        let small = run(&ScenarioConfig::paper(2, Algorithm::Centralized).scaled(8.0));
        let large = run(&ScenarioConfig::paper(5, Algorithm::Centralized).scaled(8.0));
        assert!(large.avg_report_hops > small.avg_report_hops * 1.5);
    }

    #[test]
    fn is_deterministic() {
        let cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
            .with_seed(3)
            .scaled(16.0);
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn sink_captures_flow_story_without_changing_results() {
        let cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
            .with_seed(3)
            .scaled(16.0);
        let plain = run(&cfg);
        let mut sink = crate::obs::RingSink::with_capacity(1_000_000);
        let traced = run_with_sink(&cfg, &mut sink);
        assert_eq!(plain, traced, "observing the run must not change it");
        let trace = sink.take_trace().expect("ring sink holds a trace");
        let replaced = trace
            .events()
            .filter(|e| matches!(e, TraceEvent::Replaced { .. }))
            .count();
        assert_eq!(replaced as u64, traced.replacements);
        let legs_started = trace
            .events()
            .filter(|e| matches!(e, TraceEvent::RobotLegStarted { .. }))
            .count();
        let legs_ended = trace
            .events()
            .filter(|e| matches!(e, TraceEvent::RobotLegEnded { .. }))
            .count();
        // Legs in flight when the horizon closes never arrive.
        assert!(legs_started >= legs_ended, "{legs_started} < {legs_ended}");
        assert_eq!(legs_ended, replaced, "flow legs end at a replacement");
    }

    #[test]
    fn spans_decompose_flow_level_repairs() {
        let cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
            .with_seed(3)
            .scaled(16.0);
        let plain = run(&cfg);
        let (summary, report) = run_with_spans(&cfg);
        assert_eq!(plain, summary, "span assembly must not change results");
        assert_eq!(report.replacements(), summary.replacements);
        assert_eq!(report.failures, summary.failures);
        assert_eq!(report.out_of_order, 0);
        for span in report.spans.iter() {
            // No packets at flow level: the network stages are absent.
            assert_eq!(span.detection, None);
            assert_eq!(span.report_transit, None);
            assert_eq!(span.dispatch_decision, None);
            assert!(span.travel.is_some(), "legs drive the travel stage");
            assert!(span.total() >= 0.0);
        }
        // Failures still in flight at the horizon are orphans.
        assert_eq!(
            report.orphans.len() as u64,
            summary.failures - summary.replacements
        );
    }

    #[test]
    fn blackout_timeline_fires_at_flow_level() {
        use robonet_des::SimDuration;
        use robonet_geom::Point;
        let mut cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
            .with_seed(5)
            .scaled(16.0);
        // Long lifetimes: failures then track the injected blackout,
        // not fleet throughput.
        cfg.mean_lifetime = SimDuration::from_secs(2.0 * cfg.sim_time.as_secs_f64());
        let base = run(&cfg);
        let side = cfg.side();
        let quadrant = robonet_geom::ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(side / 2.0, 0.0),
            Point::new(side / 2.0, side / 2.0),
            Point::new(0.0, side / 2.0),
        ])
        .unwrap();
        cfg.faults = Some(FaultPlan {
            timeline: vec![TimedFault::Blackout {
                at: SimDuration::from_secs(cfg.sim_time.as_secs_f64() / 2.0),
                region: quadrant,
            }],
            ..FaultPlan::default()
        });
        let o = run(&cfg);
        assert!(
            o.failures > base.failures + 30,
            "blackout failures {} vs base {}",
            o.failures,
            base.failures
        );
        assert_eq!(run(&cfg), o, "timeline runs stay deterministic");
    }

    #[test]
    fn loss_rate_timeline_switches_probabilities() {
        use robonet_des::SimDuration;
        let mut cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
            .with_seed(5)
            .scaled(16.0);
        cfg.faults = Some(FaultPlan {
            max_report_attempts: 2,
            timeline: vec![TimedFault::LossRate {
                at: SimDuration::from_secs(cfg.sim_time.as_secs_f64() / 2.0),
                report: 0.9,
                dispatch: 0.0,
                update: 0.0,
            }],
            ..FaultPlan::default()
        });
        let o = run(&cfg);
        assert!(
            o.report_orphans > 0,
            "90% loss with 2 attempts in the second half must orphan"
        );
        let free = {
            let mut c = cfg.clone();
            c.faults = None;
            run(&c)
        };
        assert_eq!(free.report_orphans, 0, "fault-free flow runs never orphan");
    }

    #[test]
    fn regions_shift_flow_level_failures() {
        use crate::config::DeployRegion;
        use robonet_des::SimDuration;
        use robonet_geom::Point;
        let mut cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
            .with_seed(5)
            .scaled(16.0);
        cfg.mean_lifetime = SimDuration::from_secs(2.0 * cfg.sim_time.as_secs_f64());
        let base = run(&cfg);
        let side = cfg.side();
        cfg.regions.push(DeployRegion {
            poly: robonet_geom::ConvexPolygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(side / 2.0, 0.0),
                Point::new(side / 2.0, side),
                Point::new(0.0, side),
            ])
            .unwrap(),
            density: 1.0,
            mean_lifetime: Some(SimDuration::from_secs(
                cfg.mean_lifetime.as_secs_f64() / 4.0,
            )),
        });
        let o = run(&cfg);
        assert!(
            o.failures as f64 > 1.5 * base.failures as f64,
            "short-lived region must raise flow failures: {} vs {}",
            o.failures,
            base.failures
        );
    }

    #[test]
    fn large_fleet_runs_fast() {
        // 100 robots, 5000 sensors — far beyond packet-level reach.
        let cfg = ScenarioConfig::paper(10, Algorithm::Dynamic)
            .with_seed(1)
            .scaled(8.0);
        let fast = run(&cfg);
        assert!(fast.failures > 1000);
        assert!(fast.replacements as f64 > 0.9 * fast.failures as f64);
    }
}
