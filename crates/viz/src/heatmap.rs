//! Per-grid-cell density heatmaps over the field: where failures
//! cluster, where repairs are slow.
//!
//! Samples are `(position, weight)` pairs binned into a `grid × grid`
//! lattice; a cell's intensity is either the weight *sum* (event
//! density) or the weight *mean* (e.g. average repair latency at that
//! spot). Colour runs white → deep red on a scale normalised to the
//! hottest cell, which is printed in the legend so two heatmaps can be
//! compared numerically.

use robonet_geom::{Bounds, Point};

use crate::svg::Svg;

/// How a cell's samples aggregate into its intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeatMetric {
    /// Sum of weights (with unit weights: an event count).
    Sum,
    /// Mean weight (e.g. average latency); empty cells stay blank.
    Mean,
}

/// A heatmap specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    /// Figure title.
    pub title: String,
    /// Unit suffix for the legend (e.g. `"failures"`, `"s"`).
    pub unit: String,
    /// The field.
    pub bounds: Bounds,
    /// Lattice resolution per axis.
    pub grid: usize,
    /// Aggregation rule.
    pub metric: HeatMetric,
    /// The samples: field position and weight.
    pub samples: Vec<(Point, f64)>,
}

impl Heatmap {
    /// Bins the samples; returns per-cell intensity in row-major order
    /// (row 0 = bottom of the field), `None` for empty cells.
    fn bin(&self) -> Vec<Option<f64>> {
        let g = self.grid.max(1);
        let mut sum = vec![0.0_f64; g * g];
        let mut count = vec![0u64; g * g];
        for &(p, w) in &self.samples {
            let fx = (p.x - self.bounds.min().x) / self.bounds.width();
            let fy = (p.y - self.bounds.min().y) / self.bounds.height();
            let cx = ((fx * g as f64).floor() as isize).clamp(0, g as isize - 1) as usize;
            let cy = ((fy * g as f64).floor() as isize).clamp(0, g as isize - 1) as usize;
            sum[cy * g + cx] += w;
            count[cy * g + cx] += 1;
        }
        sum.iter()
            .zip(&count)
            .map(|(&s, &c)| match self.metric {
                HeatMetric::Sum => (c > 0).then_some(s),
                HeatMetric::Mean => (c > 0).then(|| s / c as f64),
            })
            .collect()
    }

    /// Renders at `size × size` field pixels (plus header and legend).
    /// Output is byte-deterministic for a given spec.
    pub fn render(&self, size: u32) -> String {
        let header = 28.0;
        let footer = 24.0;
        let s = f64::from(size);
        let g = self.grid.max(1);
        let mut doc = Svg::new(size, size + header as u32 + footer as u32);
        doc.text(8.0, 18.0, 13.0, "start", "#111111", &self.title);
        doc.rect(0.0, header, s, s, "#ffffff", Some("#333333"));

        let cells = self.bin();
        let hottest = cells
            .iter()
            .flatten()
            .fold(0.0_f64, |acc, &v| acc.max(v))
            .max(1e-12);
        let cell_px = s / g as f64;
        for cy in 0..g {
            for cx in 0..g {
                let Some(v) = cells[cy * g + cx] else {
                    continue;
                };
                // Row 0 is the field's bottom; SVG y grows downward.
                let x = cx as f64 * cell_px;
                let y = header + s - (cy + 1) as f64 * cell_px;
                doc.rect(x, y, cell_px, cell_px, &heat_color(v / hottest), None);
            }
        }
        // Grid lines over the fills keep cell boundaries readable.
        for i in 1..g {
            let t = i as f64 * cell_px;
            doc.line(t, header, t, header + s, "#00000022", 0.5);
            doc.line(0.0, header + t, s, header + t, "#00000022", 0.5);
        }

        // Legend: a white→red ramp with the hottest value labelled.
        let ly = header + s + 6.0;
        let steps = 24usize;
        let lw = 120.0;
        for i in 0..steps {
            doc.rect(
                8.0 + i as f64 * lw / steps as f64,
                ly,
                lw / steps as f64,
                8.0,
                &heat_color((i as f64 + 0.5) / steps as f64),
                None,
            );
        }
        doc.rect(8.0, ly, lw, 8.0, "none", Some("#999999"));
        doc.text(8.0 + lw + 6.0, ly + 8.0, 10.0, "start", "#555555", "0");
        doc.text(
            s - 8.0,
            ly + 8.0,
            10.0,
            "end",
            "#555555",
            &format!(
                "max {hottest:.2} {unit} / cell ({g}x{g} grid)",
                unit = self.unit
            ),
        );
        doc.finish()
    }
}

/// White → deep red, `v` in `[0, 1]`.
fn heat_color(v: f64) -> String {
    let v = v.clamp(0.0, 1.0);
    // Keep even the faintest non-empty cell visibly warm.
    let v = 0.15 + 0.85 * v;
    let r = 255.0;
    let gb = (255.0 * (1.0 - v)).round() as u8;
    format!("#{:02x}{gb:02x}{gb:02x}", r as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(metric: HeatMetric) -> Heatmap {
        Heatmap {
            title: "failure density".into(),
            unit: "failures".into(),
            bounds: Bounds::square(100.0),
            grid: 4,
            metric,
            samples: vec![
                (Point::new(10.0, 10.0), 1.0),
                (Point::new(12.0, 12.0), 1.0),
                (Point::new(90.0, 90.0), 3.0),
            ],
        }
    }

    #[test]
    fn sum_and_mean_bin_differently() {
        let sums = spec(HeatMetric::Sum).bin();
        let means = spec(HeatMetric::Mean).bin();
        assert_eq!(sums[0], Some(2.0), "two unit samples in the corner cell");
        assert_eq!(means[0], Some(1.0));
        assert_eq!(sums[15], Some(3.0));
        assert_eq!(means[15], Some(3.0));
        assert_eq!(sums[5], None, "empty cells stay blank");
    }

    #[test]
    fn out_of_bounds_samples_clamp() {
        let mut h = spec(HeatMetric::Sum);
        h.samples = vec![(Point::new(-5.0, 500.0), 1.0)];
        let cells = h.bin();
        assert_eq!(cells[12], Some(1.0), "clamped to the top-left cell");
    }

    #[test]
    fn renders_deterministically() {
        let a = spec(HeatMetric::Sum).render(300);
        let b = spec(HeatMetric::Sum).render(300);
        assert_eq!(a, b);
        assert!(a.contains("<svg"));
        assert!(a.contains("failure density"));
        assert!(a.contains("max 3.00 failures"));
    }

    #[test]
    fn empty_heatmap_is_blank_but_valid() {
        let mut h = spec(HeatMetric::Mean);
        h.samples.clear();
        let svg = h.render(200);
        assert!(svg.contains("<svg"));
        assert!(svg.contains("max 0.00"));
    }
}
