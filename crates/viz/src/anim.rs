//! SMIL-animated field replay: robots driving their legs, sensors
//! flashing through outages, all time-synchronized to one looping
//! clock.
//!
//! The scene is plain data (positions, legs, outage intervals) so the
//! caller — `robonet replay --svg`, composing from a trace — owns all
//! trace semantics; this module only maps sim time onto a playback
//! loop and emits deterministic SVG. One loop of the animation plays
//! the whole trace; everything repeats indefinitely.

use robonet_geom::{Bounds, ConvexPolygon, Point};

use crate::svg::{Animate, Svg, PALETTE};

/// One robot leg on the playback timeline (sim seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct AnimLeg {
    /// Departure point.
    pub from: Point,
    /// Destination.
    pub to: Point,
    /// Departure time.
    pub start: f64,
    /// Arrival time (open legs should be closed to the scene duration
    /// by the caller).
    pub end: f64,
}

/// A robot: its initial position and every leg it drove.
#[derive(Debug, Clone, PartialEq)]
pub struct AnimRobot {
    /// Display label (e.g. `"R1"`).
    pub label: String,
    /// Initial (pre-first-leg) position.
    pub home: Point,
    /// Legs in start order.
    pub legs: Vec<AnimLeg>,
}

/// A sensor: its position and the intervals it spent down.
#[derive(Debug, Clone, PartialEq)]
pub struct AnimSensor {
    /// Deployed position.
    pub loc: Point,
    /// Outage intervals `(failed_at, replaced_at)`; open outages
    /// should be closed to the scene duration by the caller.
    pub outages: Vec<(f64, f64)>,
}

/// A complete replay scene.
#[derive(Debug, Clone, PartialEq)]
pub struct AnimScene {
    /// Figure title (drawn above the field).
    pub title: String,
    /// The field.
    pub bounds: Bounds,
    /// Sim-time span of the trace (s); the whole span maps onto one
    /// playback loop.
    pub duration_s: f64,
    /// Wall-clock seconds of one playback loop.
    pub playback_s: f64,
    /// Sensors in node-id order.
    pub sensors: Vec<AnimSensor>,
    /// Robots in node-id order.
    pub robots: Vec<AnimRobot>,
    /// Optional partition overlay (e.g. Voronoi cells of the initial
    /// robot positions), indexed like `robots`.
    pub cells: Vec<Option<ConvexPolygon>>,
}

/// Colours for sensor state.
const SENSOR_UP: &str = "#607d8b";
const SENSOR_DOWN: &str = "#d62728";

/// Renders the scene at `size × size` pixels (plus a header and a
/// progress bar). Output is byte-deterministic for a given scene.
pub fn render(scene: &AnimScene, size: u32) -> String {
    let header = 28.0;
    let footer = 26.0;
    let s = f64::from(size);
    let mut doc = Svg::new(size, size + header as u32 + footer as u32);
    let dur = scene.duration_s.max(1e-9);
    // One sim second takes `playback/duration` wall seconds.
    let play = scene.playback_s.max(0.1);
    let project = |p: Point| {
        (
            (p.x - scene.bounds.min().x) / scene.bounds.width() * s,
            // SVG y grows downward; the field's y grows upward.
            header + s - (p.y - scene.bounds.min().y) / scene.bounds.height() * s,
        )
    };

    doc.text(
        8.0,
        18.0,
        13.0,
        "start",
        "#111111",
        &format!("{}  ({:.0} s / loop {:.0} s)", scene.title, dur, play),
    );
    doc.rect(0.0, header, s, s, "#fafafa", Some("#333333"));

    for (i, cell) in scene.cells.iter().enumerate() {
        let Some(cell) = cell else { continue };
        let pts: Vec<(f64, f64)> = cell.vertices().iter().map(|&v| project(v)).collect();
        let color = PALETTE[i % PALETTE.len()];
        doc.polygon(&pts, &format!("{color}18"), color);
    }

    for sensor in &scene.sensors {
        let (x, y) = project(sensor.loc);
        if sensor.outages.is_empty() {
            doc.circle(x, y, 2.0, SENSOR_UP);
            continue;
        }
        // Discrete state timeline: up → down at each failure, back up
        // at each replacement; the radius pulses while down so dead
        // sensors read even at small sizes.
        let mut fill = Animate::discrete("fill", play).frame(0.0, SENSOR_UP);
        let mut radius = Animate::discrete("r", play).frame(0.0, "2.00");
        for &(failed, replaced) in &sensor.outages {
            fill = fill.frame(failed / dur * play, SENSOR_DOWN);
            radius = radius.frame(failed / dur * play, "3.50");
            fill = fill.frame(replaced / dur * play, SENSOR_UP);
            radius = radius.frame(replaced / dur * play, "2.00");
        }
        doc.animated_circle(x, y, 2.0, SENSOR_UP, &[fill, radius]);
    }

    for (i, robot) in scene.robots.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        // The driven route, as a faint static trace under the dot.
        let mut route: Vec<(f64, f64)> = vec![project(robot.home)];
        for leg in &robot.legs {
            route.push(project(leg.from));
            route.push(project(leg.to));
        }
        doc.polyline(&route, &format!("{color}55"), 1.0);

        let (hx, hy) = project(robot.home);
        if robot.legs.is_empty() {
            doc.circle(hx, hy, 5.0, color);
        } else {
            // Piecewise-linear motion: hold position between legs,
            // interpolate along each leg.
            let mut cx = Animate::linear("cx", play).frame(0.0, format!("{hx:.2}"));
            let mut cy = Animate::linear("cy", play).frame(0.0, format!("{hy:.2}"));
            for leg in &robot.legs {
                let (fx, fy) = project(leg.from);
                let (tx, ty) = project(leg.to);
                cx = cx
                    .frame(leg.start / dur * play, format!("{fx:.2}"))
                    .frame(leg.end / dur * play, format!("{tx:.2}"));
                cy = cy
                    .frame(leg.start / dur * play, format!("{fy:.2}"))
                    .frame(leg.end / dur * play, format!("{ty:.2}"));
            }
            doc.animated_circle(hx, hy, 5.0, color, &[cx, cy]);
        }
        doc.text(hx + 7.0, hy - 7.0, 11.0, "start", "#111111", &robot.label);
    }

    // Playback progress bar: sim time sweeping left to right, looped.
    let bar_y = header + s + 8.0;
    doc.rect(0.0, bar_y, s, 6.0, "#eeeeee", Some("#999999"));
    let sweep = Animate::linear("width", play)
        .frame(0.0, "0.00")
        .frame(play, format!("{s:.2}"));
    doc.animated_rect(0.0, bar_y, 0.0, 6.0, "#1f77b4", &[sweep]);
    doc.text(0.0, bar_y + 16.0, 10.0, "start", "#555555", "t = 0 s");
    doc.text(
        s,
        bar_y + 16.0,
        10.0,
        "end",
        "#555555",
        &format!("t = {dur:.0} s"),
    );
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene() -> AnimScene {
        AnimScene {
            title: "test replay".into(),
            bounds: Bounds::square(200.0),
            duration_s: 1000.0,
            playback_s: 20.0,
            sensors: vec![
                AnimSensor {
                    loc: Point::new(50.0, 50.0),
                    outages: vec![(100.0, 400.0)],
                },
                AnimSensor {
                    loc: Point::new(150.0, 150.0),
                    outages: vec![],
                },
            ],
            robots: vec![AnimRobot {
                label: "R1".into(),
                home: Point::new(100.0, 100.0),
                legs: vec![AnimLeg {
                    from: Point::new(100.0, 100.0),
                    to: Point::new(50.0, 50.0),
                    start: 150.0,
                    end: 250.0,
                }],
            }],
            cells: vec![],
        }
    }

    #[test]
    fn renders_one_loop() {
        let svg = render(&scene(), 400);
        assert!(svg.contains("<svg"));
        assert!(svg.contains("R1"));
        assert!(svg.contains("repeatCount=\"indefinite\""));
        assert!(svg.contains("attributeName=\"cx\""), "robot moves");
        assert!(svg.contains("attributeName=\"fill\""), "sensor flashes");
        assert!(svg.contains("t = 1000 s"));
    }

    #[test]
    fn static_nodes_stay_static() {
        let mut sc = scene();
        sc.sensors[0].outages.clear();
        sc.robots[0].legs.clear();
        let svg = render(&sc, 300);
        // Only the progress bar animates.
        assert_eq!(svg.matches("<animate ").count(), 1, "got: {svg}");
    }

    #[test]
    fn byte_deterministic() {
        assert_eq!(render(&scene(), 400), render(&scene(), 400));
    }
}
