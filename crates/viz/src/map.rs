//! Field maps: deployments, Voronoi cells, robot trajectories.

use robonet_geom::{Bounds, ConvexPolygon, Point};

use crate::svg::{Svg, PALETTE};

/// A field-map renderer that projects world coordinates (metres) onto a
/// square SVG canvas.
#[derive(Debug)]
pub struct FieldMap {
    bounds: Bounds,
    size: u32,
    doc: Svg,
}

impl FieldMap {
    /// Creates a map of `bounds` rendered at `size × size` pixels.
    pub fn new(bounds: Bounds, size: u32) -> Self {
        let mut doc = Svg::new(size, size);
        doc.rect(
            0.0,
            0.0,
            f64::from(size),
            f64::from(size),
            "#fafafa",
            Some("#333333"),
        );
        FieldMap { bounds, size, doc }
    }

    fn project(&self, p: Point) -> (f64, f64) {
        let s = f64::from(self.size);
        (
            (p.x - self.bounds.min().x) / self.bounds.width() * s,
            // SVG y grows downward; the field's y grows upward.
            s - (p.y - self.bounds.min().y) / self.bounds.height() * s,
        )
    }

    /// Draws sensors as small dots; dead sensors are drawn hollow red.
    pub fn sensors(&mut self, positions: &[Point], alive: &[bool]) {
        for (i, &p) in positions.iter().enumerate() {
            let (x, y) = self.project(p);
            if alive.get(i).copied().unwrap_or(true) {
                self.doc.circle(x, y, 2.0, "#607d8b");
            } else {
                self.doc.circle(x, y, 3.0, "#d62728");
            }
        }
    }

    /// Draws robots as numbered squares.
    pub fn robots(&mut self, positions: &[Point]) {
        for (i, &p) in positions.iter().enumerate() {
            let (x, y) = self.project(p);
            let color = PALETTE[i % PALETTE.len()];
            self.doc
                .rect(x - 5.0, y - 5.0, 10.0, 10.0, color, Some("#111111"));
            self.doc.text(
                x + 7.0,
                y - 7.0,
                11.0,
                "start",
                "#111111",
                &format!("R{}", i + 1),
            );
        }
    }

    /// Overlays convex cells (e.g. a Voronoi partition) as translucent
    /// fills.
    pub fn cells(&mut self, cells: &[Option<ConvexPolygon>]) {
        for (i, cell) in cells.iter().enumerate() {
            let Some(cell) = cell else { continue };
            let pts: Vec<(f64, f64)> = cell.vertices().iter().map(|&v| self.project(v)).collect();
            let color = PALETTE[i % PALETTE.len()];
            self.doc.polygon(&pts, &format!("{color}22"), color);
        }
    }

    /// Draws a travelled path as a polyline.
    pub fn trajectory(&mut self, waypoints: &[Point], color_index: usize) {
        let pts: Vec<(f64, f64)> = waypoints.iter().map(|&p| self.project(p)).collect();
        self.doc
            .polyline(&pts, PALETTE[color_index % PALETTE.len()], 1.4);
    }

    /// Finishes the SVG document.
    pub fn finish(self) -> String {
        self.doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robonet_geom::voronoi::voronoi_cells;

    fn field() -> Bounds {
        Bounds::square(400.0)
    }

    #[test]
    fn full_map_renders() {
        let sensors = vec![Point::new(10.0, 10.0), Point::new(200.0, 300.0)];
        let robots = vec![Point::new(100.0, 100.0), Point::new(300.0, 300.0)];
        let cells = voronoi_cells(&robots, &field());
        let mut map = FieldMap::new(field(), 600);
        map.cells(&cells);
        map.sensors(&sensors, &[true, false]);
        map.robots(&robots);
        map.trajectory(&[Point::new(100.0, 100.0), Point::new(150.0, 180.0)], 0);
        let svg = map.finish();
        assert!(svg.contains("<svg"));
        assert!(svg.contains("R1"));
        assert!(svg.contains("R2"));
        assert!(svg.contains("<polygon"));
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn projection_flips_y() {
        let map = FieldMap::new(field(), 400);
        let (x0, y0) = map.project(Point::new(0.0, 0.0));
        let (x1, y1) = map.project(Point::new(400.0, 400.0));
        assert_eq!((x0, y0), (0.0, 400.0), "field origin is bottom-left");
        assert_eq!((x1, y1), (400.0, 0.0), "field max is top-right");
    }

    #[test]
    fn dead_sensors_marked_distinctly() {
        let mut map = FieldMap::new(field(), 200);
        map.sensors(&[Point::new(10.0, 10.0)], &[false]);
        let svg = map.finish();
        assert!(svg.contains("#d62728"), "dead sensor colour present");
    }
}
