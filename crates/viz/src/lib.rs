//! SVG rendering for `robonet` experiments.
//!
//! Dependency-free SVG generation used to turn experiment output into
//! figures: line charts in the style of the paper's Figures 2–4
//! ([`chart`]), field maps showing deployments, Voronoi cells and
//! robot trajectories ([`map`]), SMIL-animated trace replays
//! ([`anim`]), failure/latency density heatmaps ([`heatmap`]) and
//! per-failure span waterfalls ([`waterfall`]). The [`svg`] module
//! provides the small typed document builder all of them are built on.
//!
//! ```
//! use robonet_viz::chart::{LineChart, Series};
//!
//! let chart = LineChart::new("travel per failure (m)", "robots", "metres")
//!     .with_series(Series::new("fixed", vec![(4.0, 104.2), (9.0, 105.4), (16.0, 102.9)]))
//!     .with_series(Series::new("dynamic", vec![(4.0, 104.0), (9.0, 102.6), (16.0, 101.7)]));
//! let svg = chart.render(640, 420);
//! assert!(svg.contains("<svg"));
//! assert!(svg.contains("fixed"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anim;
pub mod chart;
pub mod heatmap;
pub mod map;
pub mod svg;
pub mod waterfall;
