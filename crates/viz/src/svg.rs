//! A minimal typed SVG document builder.
//!
//! Covers exactly the primitives the charts and maps need; everything is
//! emitted with escaped text and fixed-precision coordinates so output
//! is deterministic and diff-friendly.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct Svg {
    width: u32,
    height: u32,
    body: String,
}

impl Svg {
    /// Creates an empty document with the given pixel size.
    pub fn new(width: u32, height: u32) -> Self {
        Svg {
            width,
            height,
            body: String::new(),
        }
    }

    /// A straight line.
    #[allow(clippy::many_single_char_names)]
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = write!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width:.2}"/>"#,
        );
    }

    /// A polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        if points.is_empty() {
            return;
        }
        let pts: String = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = write!(
            self.body,
            r#"<polyline points="{pts}" fill="none" stroke="{stroke}" stroke-width="{width:.2}"/>"#,
        );
    }

    /// A filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = write!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}"/>"#,
        );
    }

    /// An axis-aligned rectangle with optional stroke.
    #[allow(clippy::too_many_arguments)]
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: Option<&str>) {
        let stroke_attr = stroke
            .map(|s| format!(r#" stroke="{s}" stroke-width="1""#))
            .unwrap_or_default();
        let _ = write!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}"{stroke_attr}/>"#,
        );
    }

    /// A closed polygon.
    pub fn polygon(&mut self, points: &[(f64, f64)], fill: &str, stroke: &str) {
        if points.len() < 3 {
            return;
        }
        let pts: String = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = write!(
            self.body,
            r#"<polygon points="{pts}" fill="{fill}" stroke="{stroke}" stroke-width="1"/>"#,
        );
    }

    /// Text anchored at `(x, y)`; `anchor` is `start`, `middle` or
    /// `end`.
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, fill: &str, content: &str) {
        let _ = write!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-family="sans-serif" font-size="{size:.1}" text-anchor="{anchor}" fill="{fill}">{}</text>"#,
            escape(content),
        );
    }

    /// A filled circle carrying SMIL [`Animate`] timelines (a moving
    /// robot, a sensor changing state). Timelines with fewer than two
    /// frames are dropped — the static attributes already say it all.
    pub fn animated_circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, anims: &[Animate]) {
        let inner: String = anims.iter().map(Animate::render).collect();
        if inner.is_empty() {
            self.circle(cx, cy, r, fill);
            return;
        }
        let _ = write!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}">{inner}</circle>"#,
        );
    }

    /// A filled rectangle carrying SMIL [`Animate`] timelines (e.g. a
    /// playback progress bar animating `width`).
    #[allow(clippy::too_many_arguments)]
    pub fn animated_rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, anims: &[Animate]) {
        let inner: String = anims.iter().map(Animate::render).collect();
        if inner.is_empty() {
            self.rect(x, y, w, h, fill, None);
            return;
        }
        let _ = write!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}">{inner}</rect>"#,
        );
    }

    /// Finishes the document.
    pub fn finish(self) -> String {
        format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}"><rect width="{w}" height="{h}" fill="white"/>{body}</svg>"#,
            w = self.width,
            h = self.height,
            body = self.body,
        )
    }
}

/// One SMIL `<animate>` timeline on an element attribute: a sequence
/// of `(time, value)` keyframes over a fixed loop duration, rendered
/// with `repeatCount="indefinite"` so the replay loops forever.
///
/// Frames are given in *loop seconds* (`[0, dur]`); rendering
/// normalises them into SMIL `keyTimes`: clamped into range, forced
/// non-decreasing, and padded with a copy of the first/last value so
/// the timeline always spans exactly `0 → 1` (SMIL requires both
/// endpoints and an out-of-range `keyTimes` list invalidates the whole
/// animation silently in most renderers).
#[derive(Debug, Clone)]
pub struct Animate {
    attr: &'static str,
    calc_mode: &'static str,
    dur_s: f64,
    frames: Vec<(f64, String)>,
}

impl Animate {
    /// A linearly interpolated timeline (continuous motion).
    pub fn linear(attr: &'static str, dur_s: f64) -> Self {
        Animate {
            attr,
            calc_mode: "linear",
            dur_s: dur_s.max(1e-9),
            frames: Vec::new(),
        }
    }

    /// A stepwise timeline (state changes: colours, radii).
    pub fn discrete(attr: &'static str, dur_s: f64) -> Self {
        Animate {
            attr,
            calc_mode: "discrete",
            dur_s: dur_s.max(1e-9),
            frames: Vec::new(),
        }
    }

    /// Appends a keyframe at `t` loop-seconds (builder style).
    pub fn frame(mut self, t: f64, value: impl std::fmt::Display) -> Self {
        self.frames.push((t, value.to_string()));
        self
    }

    /// Number of keyframes so far.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when no keyframes have been added.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    fn render(&self) -> String {
        if self.frames.len() < 2 {
            return String::new();
        }
        let mut times: Vec<f64> = Vec::with_capacity(self.frames.len() + 2);
        let mut values: Vec<&str> = Vec::with_capacity(self.frames.len() + 2);
        for (t, v) in &self.frames {
            let t = (t / self.dur_s).clamp(0.0, 1.0);
            // SMIL keyTimes must be non-decreasing.
            let t = times.last().map_or(t, |&prev: &f64| t.max(prev));
            times.push(t);
            values.push(v);
        }
        if times[0] > 0.0 {
            times.insert(0, 0.0);
            values.insert(0, values[0]);
        }
        if *times.last().unwrap() < 1.0 {
            times.push(1.0);
            values.push(values[values.len() - 1]);
        }
        let key_times: String = times
            .iter()
            .map(|t| format!("{t:.5}"))
            .collect::<Vec<_>>()
            .join(";");
        format!(
            r#"<animate attributeName="{attr}" dur="{dur:.2}s" repeatCount="indefinite" calcMode="{mode}" keyTimes="{key_times}" values="{values}"/>"#,
            attr = self.attr,
            dur = self.dur_s,
            mode = self.calc_mode,
            values = values.join(";"),
        )
    }
}

/// Escapes text content for XML.
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// A qualitative colour cycle that stays readable on white.
pub const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_document_is_valid() {
        let svg = Svg::new(100, 50).finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains(r#"width="100""#));
        assert!(svg.contains(r#"height="50""#));
    }

    #[test]
    fn primitives_render() {
        let mut s = Svg::new(10, 10);
        s.line(0.0, 0.0, 1.0, 1.0, "#000", 1.0);
        s.circle(5.0, 5.0, 2.0, "#123456");
        s.rect(1.0, 1.0, 2.0, 2.0, "none", Some("#abc"));
        s.polyline(&[(0.0, 0.0), (1.0, 2.0)], "#f00", 1.5);
        s.polygon(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)], "#eee", "#999");
        s.text(3.0, 3.0, 12.0, "middle", "#000", "hi");
        let out = s.finish();
        for tag in [
            "<line",
            "<circle",
            "<rect",
            "<polyline",
            "<polygon",
            "<text",
        ] {
            assert!(out.contains(tag), "missing {tag}");
        }
    }

    #[test]
    fn text_is_escaped() {
        let mut s = Svg::new(10, 10);
        s.text(0.0, 0.0, 10.0, "start", "#000", "a<b & c>d");
        let out = s.finish();
        assert!(out.contains("a&lt;b &amp; c&gt;d"));
        assert!(!out.contains("a<b"));
    }

    #[test]
    fn animate_normalises_key_times() {
        let mut s = Svg::new(10, 10);
        let cx = Animate::linear("cx", 10.0)
            .frame(2.0, "1.00")
            .frame(8.0, "9.00");
        let fill = Animate::discrete("fill", 10.0)
            .frame(0.0, "#aaa")
            .frame(5.0, "#bbb");
        s.animated_circle(1.0, 1.0, 2.0, "#000", &[cx, fill]);
        let out = s.finish();
        // Padded to span exactly 0..1, first/last values duplicated.
        assert!(
            out.contains(
                r#"keyTimes="0.00000;0.20000;0.80000;1.00000" values="1.00;1.00;9.00;9.00""#
            ),
            "got: {out}"
        );
        assert!(out.contains(
            r##"calcMode="discrete" keyTimes="0.00000;0.50000;1.00000" values="#aaa;#bbb;#bbb""##
        ));
        assert!(out.contains(r#"repeatCount="indefinite""#));
    }

    #[test]
    fn single_frame_animations_fall_back_to_static() {
        let mut s = Svg::new(10, 10);
        s.animated_circle(
            1.0,
            2.0,
            3.0,
            "#123",
            &[Animate::linear("cx", 5.0).frame(0.0, "1")],
        );
        s.animated_rect(0.0, 0.0, 4.0, 4.0, "#456", &[]);
        let out = s.finish();
        assert!(!out.contains("<animate"), "got: {out}");
        assert!(out.contains(r##"<circle cx="1.00" cy="2.00" r="3.00" fill="#123"/>"##));
        assert!(
            out.contains(r##"<rect x="0.00" y="0.00" width="4.00" height="4.00" fill="#456"/>"##)
        );
    }

    #[test]
    fn degenerate_shapes_skipped() {
        let mut s = Svg::new(10, 10);
        s.polyline(&[], "#000", 1.0);
        s.polygon(&[(0.0, 0.0), (1.0, 1.0)], "#000", "#000");
        let out = s.finish();
        assert!(!out.contains("<polyline"));
        assert!(!out.contains("<polygon"));
    }
}
