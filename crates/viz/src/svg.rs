//! A minimal typed SVG document builder.
//!
//! Covers exactly the primitives the charts and maps need; everything is
//! emitted with escaped text and fixed-precision coordinates so output
//! is deterministic and diff-friendly.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct Svg {
    width: u32,
    height: u32,
    body: String,
}

impl Svg {
    /// Creates an empty document with the given pixel size.
    pub fn new(width: u32, height: u32) -> Self {
        Svg {
            width,
            height,
            body: String::new(),
        }
    }

    /// A straight line.
    #[allow(clippy::many_single_char_names)]
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = write!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width:.2}"/>"#,
        );
    }

    /// A polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        if points.is_empty() {
            return;
        }
        let pts: String = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = write!(
            self.body,
            r#"<polyline points="{pts}" fill="none" stroke="{stroke}" stroke-width="{width:.2}"/>"#,
        );
    }

    /// A filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = write!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}"/>"#,
        );
    }

    /// An axis-aligned rectangle with optional stroke.
    #[allow(clippy::too_many_arguments)]
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: Option<&str>) {
        let stroke_attr = stroke
            .map(|s| format!(r#" stroke="{s}" stroke-width="1""#))
            .unwrap_or_default();
        let _ = write!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}"{stroke_attr}/>"#,
        );
    }

    /// A closed polygon.
    pub fn polygon(&mut self, points: &[(f64, f64)], fill: &str, stroke: &str) {
        if points.len() < 3 {
            return;
        }
        let pts: String = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = write!(
            self.body,
            r#"<polygon points="{pts}" fill="{fill}" stroke="{stroke}" stroke-width="1"/>"#,
        );
    }

    /// Text anchored at `(x, y)`; `anchor` is `start`, `middle` or
    /// `end`.
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, fill: &str, content: &str) {
        let _ = write!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-family="sans-serif" font-size="{size:.1}" text-anchor="{anchor}" fill="{fill}">{}</text>"#,
            escape(content),
        );
    }

    /// Finishes the document.
    pub fn finish(self) -> String {
        format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}"><rect width="{w}" height="{h}" fill="white"/>{body}</svg>"#,
            w = self.width,
            h = self.height,
            body = self.body,
        )
    }
}

/// Escapes text content for XML.
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// A qualitative colour cycle that stays readable on white.
pub const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_document_is_valid() {
        let svg = Svg::new(100, 50).finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains(r#"width="100""#));
        assert!(svg.contains(r#"height="50""#));
    }

    #[test]
    fn primitives_render() {
        let mut s = Svg::new(10, 10);
        s.line(0.0, 0.0, 1.0, 1.0, "#000", 1.0);
        s.circle(5.0, 5.0, 2.0, "#123456");
        s.rect(1.0, 1.0, 2.0, 2.0, "none", Some("#abc"));
        s.polyline(&[(0.0, 0.0), (1.0, 2.0)], "#f00", 1.5);
        s.polygon(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)], "#eee", "#999");
        s.text(3.0, 3.0, 12.0, "middle", "#000", "hi");
        let out = s.finish();
        for tag in [
            "<line",
            "<circle",
            "<rect",
            "<polyline",
            "<polygon",
            "<text",
        ] {
            assert!(out.contains(tag), "missing {tag}");
        }
    }

    #[test]
    fn text_is_escaped() {
        let mut s = Svg::new(10, 10);
        s.text(0.0, 0.0, 10.0, "start", "#000", "a<b & c>d");
        let out = s.finish();
        assert!(out.contains("a&lt;b &amp; c&gt;d"));
        assert!(!out.contains("a<b"));
    }

    #[test]
    fn degenerate_shapes_skipped() {
        let mut s = Svg::new(10, 10);
        s.polyline(&[], "#000", 1.0);
        s.polygon(&[(0.0, 0.0), (1.0, 1.0)], "#000", "#000");
        let out = s.finish();
        assert!(!out.contains("<polyline"));
        assert!(!out.contains("<polygon"));
    }
}
