//! Span waterfalls: one horizontal bar per repaired failure, segmented
//! by lifecycle stage (detection → report → dispatch → travel →
//! install) and placed on the shared sim-time axis.
//!
//! Rows are sorted by `(start, label)` before rendering; when a trace
//! has more failures than fit, consecutive rows are bucketed (mean
//! stage durations, `n=K` labels) rather than silently dropped — the
//! figure always covers every span. Both orderings and bucket
//! boundaries are deterministic so the output can be golden-gated.

use crate::svg::{escape, Svg, PALETTE};

/// One span: a labelled bar starting at `start` sim-seconds composed
/// of stage segments laid end to end.
#[derive(Debug, Clone, PartialEq)]
pub struct WaterfallRow {
    /// Row label (e.g. `"s17 @ 1042 s"`).
    pub label: String,
    /// Bar start on the time axis (s).
    pub start: f64,
    /// `(stage index, duration s)` segments in causal order; stages a
    /// span did not carry are simply absent.
    pub segments: Vec<(usize, f64)>,
}

impl WaterfallRow {
    fn total(&self) -> f64 {
        self.segments.iter().map(|&(_, d)| d).sum()
    }
}

/// A waterfall figure specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Waterfall {
    /// Figure title.
    pub title: String,
    /// Stage names, indexed by the `usize` in row segments; also the
    /// legend, coloured from the shared palette.
    pub stage_names: Vec<String>,
    /// The spans (any order; rendering sorts).
    pub rows: Vec<WaterfallRow>,
    /// Maximum individual rows before bucketing kicks in.
    pub max_rows: usize,
}

impl Waterfall {
    /// Sorted — and, beyond `max_rows`, bucketed — rows as they will
    /// be drawn. Buckets group *consecutive* sorted rows (ceil-divided
    /// so sizes differ by at most one), average each stage's duration
    /// over the bucket, start at the bucket's earliest span, and carry
    /// an `n=K` label.
    pub fn layout_rows(&self) -> Vec<WaterfallRow> {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.label.cmp(&b.label)));
        let max = self.max_rows.max(1);
        if rows.len() <= max {
            return rows;
        }
        let buckets = max;
        let n = rows.len();
        let mut out = Vec::with_capacity(buckets);
        let mut i = 0;
        for b in 0..buckets {
            // Ceil-division split: the first `n % buckets` buckets get
            // one extra row, so every span lands in exactly one bucket.
            let len = n / buckets + usize::from(b < n % buckets);
            let chunk = &rows[i..i + len];
            i += len;
            let mut stage_sum = vec![0.0_f64; self.stage_names.len()];
            let mut stage_n = vec![0u64; self.stage_names.len()];
            for row in chunk {
                for &(stage, d) in &row.segments {
                    if stage < stage_sum.len() {
                        stage_sum[stage] += d;
                        stage_n[stage] += 1;
                    }
                }
            }
            let segments: Vec<(usize, f64)> = stage_sum
                .iter()
                .zip(&stage_n)
                .enumerate()
                .filter(|&(_, (_, &c))| c > 0)
                .map(|(s, (&sum, &c))| (s, sum / c as f64))
                .collect();
            out.push(WaterfallRow {
                label: format!(
                    "t {:.0}-{:.0} s (n={})",
                    chunk[0].start,
                    chunk[chunk.len() - 1].start,
                    chunk.len()
                ),
                start: chunk[0].start,
                segments,
            });
        }
        out
    }

    /// Renders at the given pixel width (height follows the row
    /// count). Output is byte-deterministic for a given spec.
    pub fn render(&self, width: u32) -> String {
        let rows = self.layout_rows();
        let header = 44.0;
        let row_h = 16.0;
        let label_w = 150.0;
        let w = f64::from(width);
        let height = header + rows.len() as f64 * row_h + 24.0;
        let mut doc = Svg::new(width, height.ceil() as u32);
        doc.text(8.0, 18.0, 13.0, "start", "#111111", &self.title);

        // Legend.
        let mut lx = 8.0;
        for (i, name) in self.stage_names.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            doc.rect(lx, 26.0, 10.0, 10.0, color, None);
            doc.text(lx + 13.0, 35.0, 10.0, "start", "#333333", name);
            lx += 13.0 + 7.0 * (name.len() as f64 + 2.0);
        }

        let t0 = rows.iter().map(|r| r.start).fold(f64::INFINITY, f64::min);
        let t1 = rows
            .iter()
            .map(|r| r.start + r.total())
            .fold(0.0_f64, f64::max);
        // NaN-safe degenerate check: anything but a strictly positive
        // span collapses to the unit axis.
        let grows = t1.partial_cmp(&t0) == Some(std::cmp::Ordering::Greater);
        let (t0, span) = if rows.is_empty() || !grows {
            (0.0, 1.0)
        } else {
            (t0, t1 - t0)
        };
        let time_w = (w - label_w - 16.0).max(1.0);
        let to_x = |t: f64| label_w + (t - t0) / span * time_w;

        for (r, row) in rows.iter().enumerate() {
            let y = header + r as f64 * row_h;
            if r % 2 == 1 {
                doc.rect(0.0, y, w, row_h, "#00000008", None);
            }
            doc.text(
                label_w - 6.0,
                y + row_h - 4.5,
                9.0,
                "end",
                "#333333",
                &row.label,
            );
            let mut t = row.start;
            for &(stage, d) in &row.segments {
                let x = to_x(t);
                let bar_w = (to_x(t + d) - x).max(0.5);
                doc.rect(
                    x,
                    y + 2.5,
                    bar_w,
                    row_h - 5.0,
                    PALETTE[stage % PALETTE.len()],
                    None,
                );
                t += d;
            }
        }

        // Time axis.
        let axis_y = header + rows.len() as f64 * row_h + 4.0;
        doc.line(label_w, axis_y, label_w + time_w, axis_y, "#333333", 1.0);
        for i in 0..=4 {
            let t = t0 + span * f64::from(i) / 4.0;
            let x = to_x(t);
            doc.line(x, axis_y, x, axis_y + 4.0, "#333333", 1.0);
            doc.text(
                x,
                axis_y + 14.0,
                9.0,
                "middle",
                "#555555",
                &escape(&format!("{t:.0} s")),
            );
        }
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: usize, max_rows: usize) -> Waterfall {
        Waterfall {
            title: "repair spans".into(),
            stage_names: vec!["detection".into(), "travel".into()],
            rows: (0..n)
                .map(|i| WaterfallRow {
                    label: format!("s{i}"),
                    start: 100.0 * (n - i) as f64,
                    segments: vec![(0, 30.0), (1, 60.0 + i as f64)],
                })
                .collect(),
            max_rows,
        }
    }

    #[test]
    fn rows_sort_by_start_then_label() {
        let rows = spec(3, 10).layout_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].label, "s2", "earliest start first");
        assert!(rows[0].start < rows[1].start);
    }

    #[test]
    fn bucketing_covers_every_span_with_balanced_buckets() {
        let wf = spec(10, 4);
        let rows = wf.layout_rows();
        assert_eq!(rows.len(), 4);
        let counted: usize = rows
            .iter()
            .map(|r| {
                let n = r.label.split("n=").nth(1).unwrap();
                n.trim_end_matches(')').parse::<usize>().unwrap()
            })
            .sum();
        assert_eq!(counted, 10, "no span silently dropped");
        // 10 over 4 → 3,3,2,2.
        assert!(rows[0].label.ends_with("(n=3)"));
        assert!(rows[3].label.ends_with("(n=2)"));
        // Mean travel of the first bucket: rows sorted descending by
        // construction → sorted ascending = i = 9,8,7 → 69,68,67.
        let travel = rows[0].segments.iter().find(|&&(s, _)| s == 1).unwrap().1;
        assert!((travel - 68.0).abs() < 1e-9, "got {travel}");
    }

    #[test]
    fn renders_deterministically() {
        let a = spec(30, 8).render(640);
        let b = spec(30, 8).render(640);
        assert_eq!(a, b);
        assert!(a.contains("repair spans"));
        assert!(a.contains("detection"));
        assert!(a.contains("n=4"));
    }

    #[test]
    fn empty_waterfall_is_valid() {
        let wf = Waterfall {
            title: "empty".into(),
            stage_names: vec!["travel".into()],
            rows: vec![],
            max_rows: 5,
        };
        let svg = wf.render(400);
        assert!(svg.contains("<svg"));
    }
}
