//! Line charts in the style of the paper's Figures 2–4: a metric on the
//! y-axis against the number of maintenance robots on the x-axis, one
//! series per algorithm.

use crate::svg::{Svg, PALETTE};

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples in any order; they are plotted sorted by x.
    pub points: Vec<(f64, f64)>,
    /// Palette slot override. `None` assigns colors by series position;
    /// an explicit index lets related series across charts (or the same
    /// metric from several runs) keep one stable color.
    pub color: Option<usize>,
}

impl Series {
    /// Creates a series with position-assigned color.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
            color: None,
        }
    }

    /// Pins the series to a palette slot (builder style).
    pub fn with_color(mut self, slot: usize) -> Self {
        self.color = Some(slot);
        self
    }
}

/// A titled line chart with axes, ticks, markers and a legend.
#[derive(Debug, Clone, Default)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    y_from_zero: bool,
    time_x: bool,
}

impl LineChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            y_from_zero: true,
            time_x: false,
        }
    }

    /// Adds a series (builder style).
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Starts the y-axis at the data minimum instead of zero.
    pub fn tight_y(mut self) -> Self {
        self.y_from_zero = false;
        self
    }

    /// Formats x-axis ticks as simulation time (`420s`, `12.8ks`)
    /// instead of plain numbers.
    pub fn with_time_axis(mut self) -> Self {
        self.time_x = true;
        self
    }

    /// Renders to an SVG string of the given pixel size.
    ///
    /// # Panics
    ///
    /// Panics if the size is too small to hold the plot margins.
    pub fn render(&self, width: u32, height: u32) -> String {
        assert!(width >= 160 && height >= 120, "chart size too small");
        let (ml, mr, mt, mb) = (64.0, 16.0, 36.0, 48.0);
        let pw = f64::from(width) - ml - mr;
        let ph = f64::from(height) - mt - mb;

        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                xs.push(x);
                ys.push(y);
            }
        }
        let (x_min, x_max) = bounds(&xs, false);
        let (y_min, y_max) = bounds(&ys, self.y_from_zero);
        let sx = move |x: f64| ml + (x - x_min) / (x_max - x_min).max(1e-12) * pw;
        let sy = move |y: f64| mt + ph - (y - y_min) / (y_max - y_min).max(1e-12) * ph;

        let mut doc = Svg::new(width, height);
        // Frame and title.
        doc.rect(ml, mt, pw, ph, "none", Some("#333333"));
        doc.text(
            f64::from(width) / 2.0,
            mt - 12.0,
            14.0,
            "middle",
            "#111111",
            &self.title,
        );
        // Ticks and grid.
        for i in 0..=4 {
            let fy = y_min + (y_max - y_min) * f64::from(i) / 4.0;
            let y = sy(fy);
            doc.line(ml, y, ml + pw, y, "#dddddd", 0.6);
            doc.text(ml - 6.0, y + 4.0, 11.0, "end", "#333333", &format_tick(fy));
        }
        for i in 0..=4 {
            let fx = x_min + (x_max - x_min) * f64::from(i) / 4.0;
            let x = sx(fx);
            doc.line(x, mt + ph, x, mt + ph + 4.0, "#333333", 1.0);
            let tick = if self.time_x {
                format_time_tick(fx)
            } else {
                format_tick(fx)
            };
            doc.text(x, mt + ph + 18.0, 11.0, "middle", "#333333", &tick);
        }
        doc.text(
            ml + pw / 2.0,
            f64::from(height) - 10.0,
            12.0,
            "middle",
            "#111111",
            &self.x_label,
        );
        doc.text(14.0, mt + 12.0, 12.0, "start", "#111111", &self.y_label);

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[s.color.unwrap_or(i) % PALETTE.len()];
            let mut pts: Vec<(f64, f64)> = s.points.clone();
            pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
            let mapped: Vec<(f64, f64)> = pts.iter().map(|&(x, y)| (sx(x), sy(y))).collect();
            doc.polyline(&mapped, color, 2.0);
            for &(x, y) in &mapped {
                doc.circle(x, y, 3.2, color);
            }
            // Legend entry.
            let ly = mt + 14.0 + 16.0 * i as f64;
            doc.line(
                ml + pw - 86.0,
                ly - 4.0,
                ml + pw - 66.0,
                ly - 4.0,
                color,
                2.0,
            );
            doc.text(ml + pw - 60.0, ly, 11.0, "start", "#111111", &s.label);
        }
        doc.finish()
    }
}

fn bounds(values: &[f64], from_zero: bool) -> (f64, f64) {
    let mut min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let mut max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !min.is_finite() || !max.is_finite() {
        return (0.0, 1.0);
    }
    if from_zero {
        min = min.min(0.0);
    }
    if (max - min).abs() < 1e-9 {
        max = min + 1.0;
    }
    // A little headroom above the data.
    (min, max + (max - min) * 0.05)
}

fn format_time_tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{:.1}ks", v / 1000.0)
    } else {
        format!("{v:.0}s")
    }
}

fn format_tick(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        LineChart::new("t", "x", "y")
            .with_series(Series::new(
                "a",
                vec![(4.0, 100.0), (16.0, 110.0), (9.0, 105.0)],
            ))
            .with_series(Series::new(
                "b",
                vec![(4.0, 90.0), (9.0, 92.0), (16.0, 95.0)],
            ))
    }

    #[test]
    fn renders_series_and_legend() {
        let svg = chart().render(640, 420);
        assert!(svg.contains("<svg"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
        // One marker per point.
        assert!(svg.matches("<circle").count() >= 6);
    }

    #[test]
    fn points_plotted_in_x_order() {
        // The unsorted input (4, 16, 9) must render as a monotone-x
        // polyline.
        let svg = chart().render(640, 420);
        let poly = svg.split("<polyline").nth(1).expect("series polyline");
        let pts_attr = poly
            .split("points=\"")
            .nth(1)
            .unwrap()
            .split('"')
            .next()
            .unwrap();
        let xs: Vec<f64> = pts_attr
            .split(' ')
            .map(|p| p.split(',').next().unwrap().parse().unwrap())
            .collect();
        assert!(xs.windows(2).all(|w| w[0] < w[1]), "x not sorted: {xs:?}");
    }

    #[test]
    fn empty_chart_still_valid() {
        let svg = LineChart::new("empty", "x", "y").render(320, 200);
        assert!(svg.contains("<svg"));
        assert!(svg.contains("empty"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_canvas_rejected() {
        let _ = chart().render(10, 10);
    }

    #[test]
    fn time_axis_formats_ticks_in_seconds() {
        let c = LineChart::new("t", "time", "y")
            .with_series(Series::new("a", vec![(0.0, 1.0), (64000.0, 2.0)]))
            .with_time_axis();
        let svg = c.render(640, 420);
        assert!(svg.contains(">0s<"), "missing seconds tick: {svg}");
        assert!(svg.contains("ks<"), "missing kiloseconds tick: {svg}");
    }

    #[test]
    fn color_override_pins_palette_slot() {
        use crate::svg::PALETTE;
        // A single series pinned to slot 2 must use PALETTE[2], not the
        // positional PALETTE[0].
        let svg = LineChart::new("t", "x", "y")
            .with_series(Series::new("a", vec![(1.0, 1.0), (2.0, 2.0)]).with_color(2))
            .render(640, 420);
        assert!(svg.contains(PALETTE[2]));
        assert!(!svg.contains(PALETTE[0]));
    }

    #[test]
    fn tight_y_omits_zero() {
        // With y from 95..110, a zero-based chart puts the tick "0.00"
        // on the axis; tight_y must not.
        let c = LineChart::new("t", "x", "y")
            .with_series(Series::new("a", vec![(1.0, 95.0), (2.0, 110.0)]));
        let zero_based = c.clone().render(640, 420);
        let tight = c.tight_y().render(640, 420);
        assert!(zero_based.contains(">0.00<"));
        assert!(!tight.contains(">0.00<"));
    }
}
