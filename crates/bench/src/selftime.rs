//! Self-timed benchmark harness.
//!
//! A dependency-free replacement for the `criterion` surface the bench
//! targets use, so `cargo bench` compiles and runs fully offline. Each
//! benchmark is calibrated during warmup (iterations are batched until a
//! sample takes ≥ ~1 ms), then timed over a fixed number of samples;
//! the harness reports median, p95, min and mean per-iteration times,
//! plus element throughput when declared.
//!
//! Environment knobs:
//!
//! - `ROBONET_BENCH_SMOKE=1`: one unbatched iteration per benchmark and
//!   no warmup — CI smoke mode proving every bench target still runs.
//! - `ROBONET_BENCH_JSON=<path>`: append one JSON object per benchmark
//!   (JSON lines) with the raw statistics, the machine-readable
//!   counterpart of the textual report (`BENCH_*.json` trajectory).
//!
//! ```no_run
//! use robonet_bench::selftime::Criterion;
//! use robonet_bench::{bench_group, bench_main};
//!
//! fn my_bench(c: &mut Criterion) {
//!     let mut g = c.benchmark_group("demo");
//!     g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
//!     g.finish();
//! }
//!
//! bench_group!(benches, my_bench);
//! bench_main!(benches);
//! ```

use std::fmt::Display;
use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark unless overridden by
/// [`BenchmarkGroup::sample_size`].
pub const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Minimum wall time per sample the warmup calibrates batches toward.
const TARGET_SAMPLE: Duration = Duration::from_millis(1);

/// Wall-time budget spent warming up and calibrating one benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(200);

/// Work-rate declaration, used to report per-second throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// A `group/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter value, criterion-style.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl<T: Display> From<T> for BenchmarkId {
    fn from(name: T) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

/// Top-level handle owning global options and the JSON sink.
pub struct Criterion {
    smoke: bool,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            smoke: std::env::var("ROBONET_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty()),
            json_path: std::env::var("ROBONET_BENCH_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }

    fn record(&mut self, group: &str, bench: &str, stats: &Stats, throughput: Option<Throughput>) {
        let per_sec = |ns: f64| {
            if ns <= 0.0 {
                0.0
            } else {
                1e9 / ns
            }
        };
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!(
                    "  {:>12}/s",
                    human_count(n as f64 * per_sec(stats.median_ns))
                )
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:>11}B/s",
                    human_count(n as f64 * per_sec(stats.median_ns))
                )
            }
            None => String::new(),
        };
        eprintln!(
            "  {bench:<40} median {:>10}  p95 {:>10}  ({} samples × {} iters){rate}",
            human_ns(stats.median_ns),
            human_ns(stats.p95_ns),
            stats.samples,
            stats.iters_per_sample,
        );
        if let Some(path) = &self.json_path {
            let (tp_kind, tp_per_iter) = match throughput {
                Some(Throughput::Elements(n)) => ("\"elements\"".to_string(), n),
                Some(Throughput::Bytes(n)) => ("\"bytes\"".to_string(), n),
                None => ("null".to_string(), 0),
            };
            let line = format!(
                "{{\"group\":{},\"bench\":{},\"median_ns\":{:.1},\"p95_ns\":{:.1},\
                 \"mean_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{},\
                 \"throughput\":{},\"throughput_per_iter\":{}}}",
                json_string(group),
                json_string(bench),
                stats.median_ns,
                stats.p95_ns,
                stats.mean_ns,
                stats.min_ns,
                stats.samples,
                stats.iters_per_sample,
                tp_kind,
                tp_per_iter,
            );
            let r = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| writeln!(f, "{line}"));
            if let Err(e) = r {
                eprintln!("  (ROBONET_BENCH_JSON: cannot write {path}: {e})");
            }
        }
    }
}

/// A group of benchmarks sharing throughput and sample-count settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f`'s [`Bencher::iter`] routine under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            smoke: self.criterion.smoke,
            sample_size: self.sample_size,
            stats: None,
        };
        f(&mut b);
        match b.stats {
            Some(stats) => self
                .criterion
                .record(&self.name, &id.id, &stats, self.throughput),
            None => eprintln!("  {:<40} (no iter call)", id.id),
        }
        self
    }

    /// Times a routine parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Per-iteration timing statistics, in nanoseconds.
struct Stats {
    median_ns: f64,
    p95_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Passed to the benchmark closure; call [`Bencher::iter`] exactly once
/// with the routine to measure.
pub struct Bencher {
    smoke: bool,
    sample_size: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Runs `routine` through warmup + calibration, then `sample_size`
    /// timed samples of a fixed iteration batch.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.smoke {
            let t = Instant::now();
            black_box(routine());
            let ns = t.elapsed().as_nanos() as f64;
            self.stats = Some(Stats {
                median_ns: ns,
                p95_ns: ns,
                mean_ns: ns,
                min_ns: ns,
                samples: 1,
                iters_per_sample: 1,
            });
            return;
        }

        // Warmup doubles the batch until one batch costs ≥ TARGET_SAMPLE
        // or the warmup budget runs out; fast routines then get batched
        // so per-sample noise (timer resolution, scheduler) amortizes.
        let warmup_start = Instant::now();
        let mut batch: u64 = 1;
        let mut batch_ns: f64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            batch_ns = t.elapsed().as_nanos() as f64;
            if batch_ns >= TARGET_SAMPLE.as_nanos() as f64
                || warmup_start.elapsed() >= WARMUP_BUDGET
            {
                break;
            }
            batch = batch.saturating_mul(2);
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = per_iter.len();
        let median_ns = if n % 2 == 1 {
            per_iter[n / 2]
        } else {
            (per_iter[n / 2 - 1] + per_iter[n / 2]) / 2.0
        };
        // Nearest-rank p95, clamped to the largest sample.
        let p95_ns = per_iter[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1];
        self.stats = Some(Stats {
            median_ns,
            p95_ns,
            mean_ns: per_iter.iter().sum::<f64>() / n as f64,
            min_ns: per_iter[0],
            samples: n,
            iters_per_sample: batch,
        });
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_count(x: f64) -> String {
    if x < 1e3 {
        format!("{x:.0}")
    } else if x < 1e6 {
        format!("{:.1}K", x / 1e3)
    } else if x < 1e9 {
        format!("{:.2}M", x / 1e6)
    } else {
        format!("{:.2}G", x / 1e9)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Declares a bench group function calling each target with a shared
/// [`Criterion`] — the drop-in replacement for `criterion_group!`.
#[macro_export]
macro_rules! bench_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::selftime::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the given groups — the drop-in replacement
/// for `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::selftime::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_sane_stats() {
        let mut b = Bencher {
            smoke: false,
            sample_size: 10,
            stats: None,
        };
        b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
        let s = b.stats.expect("stats recorded");
        assert!(s.median_ns > 0.0);
        assert!(s.p95_ns >= s.median_ns);
        assert!(s.min_ns <= s.median_ns);
        assert_eq!(s.samples, 10);
        assert!(s.iters_per_sample >= 1);
    }

    #[test]
    fn smoke_mode_runs_exactly_once() {
        let mut b = Bencher {
            smoke: true,
            sample_size: 50,
            stats: None,
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.stats.unwrap().samples, 1);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }

    #[test]
    fn human_units() {
        assert_eq!(human_ns(500.0), "500 ns");
        assert_eq!(human_ns(1500.0), "1.50 µs");
        assert_eq!(human_ns(2_500_000.0), "2.50 ms");
        assert_eq!(human_ns(3_200_000_000.0), "3.200 s");
    }
}
