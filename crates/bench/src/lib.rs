//! Shared sweep harness for regenerating the paper's figures.
//!
//! Every figure in the evaluation section of *Replacing Failed Sensor
//! Nodes by Mobile Robots* comes from the same experiment design: run
//! the three coordination algorithms with 4, 9 and 16 robots and report
//! a per-failure average (§4.3). [`sweep`] runs that design on the
//! deterministic work-stealing engine ([`robonet_core::sweep`]) — rows
//! are bit-identical for any `--jobs` value — and the `fig2`/`fig3`/
//! `fig4` binaries print the matching series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod selftime;

use robonet_core::report::Row;
use robonet_core::sweep::{SweepGrid, SweepResult};
use robonet_core::{coord, Algorithm};
use robonet_des::pool::resolve_jobs;

/// The robot-count axis of the paper's figures: k² for k ∈ {2, 3, 4},
/// i.e. 4, 9 and 16 robots ("we choose square numbers to make area
/// partition easy", §4.3.1).
pub const PAPER_KS: [usize; 3] = [2, 3, 4];

/// The figure algorithms in the order the figures list them, resolved
/// through the coordination registry ([`coord::figure_algorithms`]) —
/// registering a new figure algorithm automatically adds it to every
/// sweep.
pub fn paper_algorithms() -> Vec<Algorithm> {
    coord::figure_algorithms().map(|e| e.algorithm).collect()
}

/// Options for a figure sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Time-compression factor (1.0 = the paper's full 64000 s runs;
    /// see [`ScenarioConfig::scaled`] — per-failure metrics are
    /// preserved).
    pub scale: f64,
    /// Seeds to run and average over.
    pub seeds: Vec<u64>,
    /// Robot-count axis (values of k; robots = k²).
    pub ks: Vec<usize>,
    /// Algorithms to include.
    pub algorithms: Vec<Algorithm>,
    /// Worker threads (`None` → `ROBONET_JOBS` env, else all cores).
    /// Results are bit-identical for any value.
    pub jobs: Option<usize>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            scale: 1.0,
            seeds: vec![1],
            ks: PAPER_KS.to_vec(),
            algorithms: paper_algorithms(),
            jobs: None,
        }
    }
}

impl SweepOptions {
    /// Parses command-line style arguments: `--scale N`, `--seeds a,b`,
    /// `--ks 2,3,4`, `--jobs N`. Unknown arguments are rejected.
    ///
    /// # Errors
    ///
    /// Returns a usage message when an argument cannot be parsed.
    pub fn from_args(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = SweepOptions::default();
        let mut args = args.peekable();
        while let Some(flag) = args.next() {
            let mut value = || {
                args.next()
                    .ok_or_else(|| format!("missing value for {flag}"))
            };
            match flag.as_str() {
                "--scale" => {
                    opts.scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                }
                "--seeds" => {
                    opts.seeds = value()?
                        .split(',')
                        .map(|s| s.parse().map_err(|e| format!("bad seed: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "--ks" => {
                    opts.ks = value()?
                        .split(',')
                        .map(|s| s.parse().map_err(|e| format!("bad k: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "--jobs" => {
                    let n: usize = value()?.parse().map_err(|e| format!("bad --jobs: {e}"))?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".to_string());
                    }
                    opts.jobs = Some(n);
                }
                other => {
                    return Err(format!(
                        "unknown argument {other}; supported: \
                         --scale N --seeds a,b --ks 2,3,4 --jobs N"
                    ));
                }
            }
        }
        Ok(opts)
    }
}

/// The sweep grid these options describe: every `(k, algorithm, seed)`
/// combination at the requested time compression, in k-major order.
pub fn grid(opts: &SweepOptions) -> SweepGrid {
    SweepGrid::paper(&opts.ks, &opts.algorithms, &opts.seeds, opts.scale)
}

/// Runs the full sweep on the deterministic work-stealing engine
/// ([`robonet_core::sweep`]) and returns the complete [`SweepResult`]:
/// per-cell results in `(k, algorithm, seed)` order, any panicked
/// cells, and the order-independent cross-cell aggregate. Results are
/// bit-identical for any worker count.
pub fn sweep_result(opts: &SweepOptions) -> SweepResult {
    grid(opts).run(resolve_jobs(opts.jobs))
}

/// Runs the full sweep and returns one [`Row`] per (algorithm, k, seed).
///
/// Thin wrapper over [`sweep_result`] for the figure binaries, which
/// only need rows.
///
/// # Panics
///
/// Panics if any cell's simulation panicked, listing the failed cells.
pub fn sweep(opts: &SweepOptions) -> Vec<Row> {
    let result = sweep_result(opts);
    assert!(
        result.failed.is_empty(),
        "sweep cells panicked:\n{}",
        result
            .failed
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    result.rows()
}

/// Averages a per-row metric over seeds, returning
/// `(algorithm, robots, mean)` triples ordered by algorithm then robot
/// count.
pub fn average_series(
    rows: &[Row],
    metric: impl Fn(&Row) -> Option<f64>,
) -> Vec<(String, usize, f64)> {
    let mut grouped: Vec<(String, usize, Vec<f64>)> = Vec::new();
    for row in rows {
        let Some(v) = metric(row) else { continue };
        match grouped
            .iter_mut()
            .find(|(a, r, _)| *a == row.algorithm && *r == row.robots)
        {
            Some((_, _, vs)) => vs.push(v),
            None => grouped.push((row.algorithm.clone(), row.robots, vec![v])),
        }
    }
    grouped
        .into_iter()
        .map(|(a, r, vs)| {
            let mean = vs.iter().sum::<f64>() / vs.len() as f64;
            (a, r, mean)
        })
        .collect()
}

/// Builds a paper-style line chart (robot count on x) from sweep rows.
pub fn chart_from_rows(
    title: &str,
    y_label: &str,
    rows: &[Row],
    metric: impl Fn(&Row) -> Option<f64> + Copy,
) -> robonet_viz::chart::LineChart {
    let mut chart = robonet_viz::chart::LineChart::new(title, "maintenance robots", y_label);
    let series = average_series(rows, metric);
    let mut algorithms: Vec<String> = Vec::new();
    for (a, _, _) in &series {
        if !algorithms.contains(a) {
            algorithms.push(a.clone());
        }
    }
    for alg in algorithms {
        let points: Vec<(f64, f64)> = series
            .iter()
            .filter(|(a, _, _)| *a == alg)
            .map(|&(_, robots, v)| (robots as f64, v))
            .collect();
        chart = chart.with_series(robonet_viz::chart::Series::new(alg, points));
    }
    chart
}

/// Prints a figure as an aligned series table: one line per algorithm,
/// one column per robot count.
pub fn print_series(
    title: &str,
    rows: &[Row],
    ks: &[usize],
    metric: impl Fn(&Row) -> Option<f64> + Copy,
) {
    println!("{title}");
    let series = average_series(rows, metric);
    let mut algorithms: Vec<String> = Vec::new();
    for (a, _, _) in &series {
        if !algorithms.contains(a) {
            algorithms.push(a.clone());
        }
    }
    print!("{:<14}", "algorithm");
    for k in ks {
        print!("{:>12}", format!("{} robots", k * k));
    }
    println!();
    for alg in &algorithms {
        print!("{alg:<14}");
        for k in ks {
            let robots = k * k;
            match series.iter().find(|(a, r, _)| a == alg && *r == robots) {
                Some((_, _, v)) => print!("{v:>12.2}"),
                None => print!("{:>12}", "-"),
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robonet_core::metrics::Summary;

    fn row(alg: &str, robots: usize, travel: f64) -> Row {
        Row {
            algorithm: alg.into(),
            robots,
            seed: 1,
            summary: Summary {
                failures_occurred: 10,
                replacements: 10,
                avg_travel_per_failure: travel,
                avg_report_hops: 2.0,
                avg_request_hops: None,
                loc_update_tx_per_failure: 100.0,
                report_delivery_ratio: 1.0,
                avg_repair_delay: 100.0,
                p95_repair_delay: 200.0,
                total_travel: 1000.0,
                myrobot_accuracy: 1.0,
                packets_dropped: Default::default(),
            },
        }
    }

    #[test]
    fn averaging_groups_by_algorithm_and_robots() {
        let rows = vec![
            row("fixed", 4, 90.0),
            row("fixed", 4, 110.0),
            row("dynamic", 4, 80.0),
        ];
        let s = average_series(&rows, |r| Some(r.summary.avg_travel_per_failure));
        assert_eq!(s.len(), 2);
        assert!(s.contains(&("fixed".to_string(), 4, 100.0)));
        assert!(s.contains(&("dynamic".to_string(), 4, 80.0)));
    }

    #[test]
    fn chart_builder_covers_all_algorithms() {
        let rows = vec![
            row("fixed", 4, 90.0),
            row("fixed", 9, 95.0),
            row("dynamic", 4, 80.0),
        ];
        let svg = chart_from_rows("Figure 2", "m", &rows, |r| {
            Some(r.summary.avg_travel_per_failure)
        })
        .render(640, 420);
        assert!(svg.contains("fixed"));
        assert!(svg.contains("dynamic"));
        assert!(svg.contains("Figure 2"));
    }

    #[test]
    fn paper_algorithms_follow_figure_order() {
        let names: Vec<&str> = paper_algorithms().iter().map(|a| a.name()).collect();
        assert_eq!(names, ["fixed", "dynamic", "centralized"]);
    }

    #[test]
    fn args_parse() {
        let opts = SweepOptions::from_args(
            [
                "--scale", "8", "--seeds", "1,2", "--ks", "2,3", "--jobs", "4",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.scale, 8.0);
        assert_eq!(opts.seeds, vec![1, 2]);
        assert_eq!(opts.ks, vec![2, 3]);
        assert_eq!(opts.jobs, Some(4));
        assert!(SweepOptions::from_args(["--bogus".to_string()].into_iter()).is_err());
        assert!(
            SweepOptions::from_args(["--scale".to_string()].into_iter()).is_err(),
            "missing value"
        );
        assert!(
            SweepOptions::from_args(["--jobs", "0"].iter().map(|s| s.to_string())).is_err(),
            "zero jobs rejected"
        );
    }

    #[test]
    fn grid_matches_options_axes() {
        let opts = SweepOptions {
            scale: 64.0,
            seeds: vec![1, 2],
            ks: vec![1, 2],
            algorithms: paper_algorithms(),
            jobs: Some(1),
        };
        let g = grid(&opts);
        assert_eq!(g.len(), 2 * 2 * opts.algorithms.len());
        assert_eq!(g.cells()[0].k, 1);
        assert_eq!(g.cells()[g.len() - 1].k, 2);
    }
}
