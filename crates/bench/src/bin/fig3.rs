//! Regenerates Figure 3: average message-passing hops per failure —
//! failure reports for all three algorithms plus repair requests for
//! the centralized algorithm.
//!
//! Usage: `cargo run --release -p robonet-bench --bin fig3 -- [--scale N] [--seeds a,b] [--ks 2,3,4]`

use robonet_bench::{print_series, sweep, SweepOptions};
use robonet_core::report::Row;

fn main() {
    let opts = match SweepOptions::from_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "fig3: messaging hops sweep (scale {}, seeds {:?}, ks {:?})",
        opts.scale, opts.seeds, opts.ks
    );
    let rows = sweep(&opts);
    println!("{}", Row::csv_header());
    for r in &rows {
        println!("{}", r.to_csv());
    }
    println!();
    let chart = robonet_bench::chart_from_rows(
        "Figure 3: average hops per failure report",
        "hops",
        &rows,
        |r| Some(r.summary.avg_report_hops),
    );
    let path = "fig3.svg";
    match std::fs::write(path, chart.render(640, 420)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print_series(
        "Figure 3a: average hops per failure report",
        &rows,
        &opts.ks,
        |r| Some(r.summary.avg_report_hops),
    );
    println!();
    print_series(
        "Figure 3b: average hops per repair request (centralized only)",
        &rows,
        &opts.ks,
        |r| r.summary.avg_request_hops,
    );
}
