//! Regenerates Figure 4: average number of transmissions for robot
//! location updates per failure.
//!
//! Usage: `cargo run --release -p robonet-bench --bin fig4 -- [--scale N] [--seeds a,b] [--ks 2,3,4]`

use robonet_bench::{print_series, sweep, SweepOptions};
use robonet_core::report::Row;

fn main() {
    let opts = match SweepOptions::from_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "fig4: location-update transmissions sweep (scale {}, seeds {:?}, ks {:?})",
        opts.scale, opts.seeds, opts.ks
    );
    let rows = sweep(&opts);
    println!("{}", Row::csv_header());
    for r in &rows {
        println!("{}", r.to_csv());
    }
    println!();
    let chart = robonet_bench::chart_from_rows(
        "Figure 4: location-update transmissions per failure",
        "transmissions",
        &rows,
        |r| Some(r.summary.loc_update_tx_per_failure),
    );
    let path = "fig4.svg";
    match std::fs::write(path, chart.render(640, 420)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print_series(
        "Figure 4: location-update transmissions per failure",
        &rows,
        &opts.ks,
        |r| Some(r.summary.loc_update_tx_per_failure),
    );
}
