//! Regenerates Figure 2: average robot traveling distance per failure
//! as a function of the number of maintenance robots.
//!
//! Usage: `cargo run --release -p robonet-bench --bin fig2 -- [--scale N] [--seeds a,b] [--ks 2,3,4]`
//!
//! With no arguments this runs the paper's full 64000 s configuration
//! (expect minutes of wall time); `--scale 8` runs 8× compressed with
//! per-failure metrics preserved.

use robonet_bench::{print_series, sweep, SweepOptions};
use robonet_core::report::Row;

fn main() {
    let opts = match SweepOptions::from_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "fig2: motion overhead sweep (scale {}, seeds {:?}, ks {:?})",
        opts.scale, opts.seeds, opts.ks
    );
    let rows = sweep(&opts);
    println!("{}", Row::csv_header());
    for r in &rows {
        println!("{}", r.to_csv());
    }
    println!();
    let chart = robonet_bench::chart_from_rows(
        "Figure 2: average traveling distance per failure",
        "metres",
        &rows,
        |r| Some(r.summary.avg_travel_per_failure),
    );
    let path = "fig2.svg";
    match std::fs::write(path, chart.render(640, 420)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print_series(
        "Figure 2: average traveling distance per failure (m)",
        &rows,
        &opts.ks,
        |r| Some(r.summary.avg_travel_per_failure),
    );
}
