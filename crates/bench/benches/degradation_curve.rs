//! Degradation curve: how gracefully each algorithm's repair pipeline
//! absorbs injected message loss. Sweeps the uniform loss probability
//! over reports, dispatch requests and location updates and tracks the
//! replacement ratio and the p95 repair delay — the retry/timeout
//! recovery protocol should hold the ratio near the fault-free level
//! through 10% loss, paying only in delay.
//!
//! Read the 0% row as the *paper's* protocol, not as an upper bound:
//! any active fault plan arms guardian report retries, which also
//! recover reports lost to natural MAC collisions and TTL drops, so
//! the lossy rows can out-repair the one-shot fault-free baseline.
//! The degradation signal is the trend *within* the lossy rows.

use robonet_bench::selftime::{BenchmarkId, Criterion};
use robonet_bench::{bench_group, bench_main};

use robonet_core::{Algorithm, FaultPlan, PartitionKind, ScenarioConfig, Simulation};

const SCALE: f64 = 64.0;
const LOSS: [f64; 4] = [0.0, 0.01, 0.05, 0.10];

fn degradation(c: &mut Criterion) {
    let mut group = c.benchmark_group("degradation_curve");
    group.sample_size(10);
    println!("\nLoss-degradation curve (k=2, time-compressed x{SCALE}):");
    println!(
        "  {:<12} {:>6} {:>10} {:>12} {:>14}",
        "algorithm", "loss", "repaired", "ratio", "p95 delay (s)"
    );
    for alg in [
        Algorithm::Centralized,
        Algorithm::Fixed(PartitionKind::Square),
        Algorithm::Dynamic,
    ] {
        for loss in LOSS {
            let mut cfg = ScenarioConfig::paper(2, alg).with_seed(1).scaled(SCALE);
            cfg.trace_capacity = 16; // assemble spans for the p95 delay
            if loss > 0.0 {
                cfg.faults = Some(FaultPlan::message_loss(loss).scaled(SCALE));
            }
            let out = Simulation::run(cfg.clone());
            let s = out.metrics.summary();
            let p95 = out
                .spans
                .as_ref()
                .and_then(|r| r.total_sketch().quantile(0.95))
                .unwrap_or(0.0);
            println!(
                "  {:<12} {:>5.0}% {:>4}/{:<5} {:>11.3} {:>14.1}",
                format!("{alg:?}").to_lowercase(),
                loss * 100.0,
                s.replacements,
                s.failures_occurred,
                s.replacements as f64 / s.failures_occurred.max(1) as f64,
                p95
            );
            group.bench_with_input(
                BenchmarkId::new(
                    format!("{alg:?}").to_lowercase(),
                    (loss * 100.0).round() as u64,
                ),
                &cfg,
                |b, cfg| b.iter(|| Simulation::run(cfg.clone()).metrics.replacements),
            );
        }
    }
    group.finish();
}

bench_group!(benches, degradation);
bench_main!(benches);
