//! Degradation curve: how gracefully each algorithm's repair pipeline
//! absorbs injected message loss. Sweeps the uniform loss probability
//! over reports, dispatch requests and location updates and tracks the
//! replacement ratio and the p95 repair delay — the retry/timeout
//! recovery protocol should hold the ratio near the fault-free level
//! through 10% loss, paying only in delay.
//!
//! Read the 0% row as the *paper's* protocol, not as an upper bound:
//! any active fault plan arms guardian report retries, which also
//! recover reports lost to natural MAC collisions and TTL drops, so
//! the lossy rows can out-repair the one-shot fault-free baseline.
//! The degradation signal is the trend *within* the lossy rows.
//!
//! All (algorithm × loss) cells run through the deterministic sweep
//! engine, so the curve is identical whatever the worker count.

use robonet_bench::selftime::{BenchmarkId, Criterion};
use robonet_bench::{bench_group, bench_main};

use robonet_core::sweep::SweepGrid;
use robonet_core::{Algorithm, FaultPlan, PartitionKind, ScenarioConfig, Simulation};
use robonet_des::pool::resolve_jobs;

const SCALE: f64 = 64.0;
const LOSS: [f64; 4] = [0.0, 0.01, 0.05, 0.10];

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::Centralized,
    Algorithm::Fixed(PartitionKind::Square),
    Algorithm::Dynamic,
];

fn cell_config(alg: Algorithm, loss: f64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper(2, alg).with_seed(1).scaled(SCALE);
    cfg.trace_capacity = 16; // assemble spans for the p95 delay
    if loss > 0.0 {
        cfg.faults = Some(FaultPlan::message_loss(loss).scaled(SCALE));
    }
    cfg
}

fn degradation(c: &mut Criterion) {
    let mut group = c.benchmark_group("degradation_curve");
    group.sample_size(10);
    println!("\nLoss-degradation curve (k=2, time-compressed x{SCALE}):");
    println!(
        "  {:<12} {:>6} {:>10} {:>12} {:>14}",
        "algorithm", "loss", "repaired", "ratio", "p95 delay (s)"
    );
    let grid = SweepGrid::from_configs(
        ALGORITHMS
            .iter()
            .flat_map(|&alg| LOSS.iter().map(move |&loss| cell_config(alg, loss)))
            .collect(),
    );
    let result = grid.run(resolve_jobs(None));
    assert!(result.failed.is_empty(), "degradation cells must not panic");
    for (cell, (alg, loss)) in result.cells.iter().zip(
        ALGORITHMS
            .iter()
            .flat_map(|&alg| LOSS.iter().map(move |&loss| (alg, loss))),
    ) {
        let s = cell.metrics.summary();
        let p95 = cell
            .spans
            .as_ref()
            .and_then(|r| r.total_sketch().quantile(0.95))
            .unwrap_or(0.0);
        println!(
            "  {:<12} {:>5.0}% {:>4}/{:<5} {:>11.3} {:>14.1}",
            format!("{alg:?}").to_lowercase(),
            loss * 100.0,
            s.replacements,
            s.failures_occurred,
            s.replacements as f64 / s.failures_occurred.max(1) as f64,
            p95
        );
        group.bench_with_input(
            BenchmarkId::new(
                format!("{alg:?}").to_lowercase(),
                (loss * 100.0).round() as u64,
            ),
            &cell.config,
            |b, cfg| b.iter(|| Simulation::run(cfg.clone()).metrics.replacements),
        );
    }
    group.finish();
}

bench_group!(benches, degradation);
bench_main!(benches);
