//! Figure 3 bench: average message hops per failure report / repair
//! request. Prints the series (time-compressed) and benchmarks the run.

use robonet_bench::selftime::{BenchmarkId, Criterion};
use robonet_bench::{bench_group, bench_main};

use robonet_core::{Algorithm, PartitionKind, ScenarioConfig, Simulation};

const SCALE: f64 = 64.0;

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_hops");
    group.sample_size(10);
    println!("\nFigure 3 (time-compressed x{SCALE}): avg hops per failure");
    for alg in [
        Algorithm::Fixed(PartitionKind::Square),
        Algorithm::Dynamic,
        Algorithm::Centralized,
    ] {
        for k in [2usize, 3] {
            let cfg = ScenarioConfig::paper(k, alg).with_seed(1).scaled(SCALE);
            let robots = cfg.n_robots();
            let s = Simulation::run(cfg.clone()).metrics.summary();
            match s.avg_request_hops {
                Some(req) => println!(
                    "  {alg:<12} {robots:>2} robots: report {:.2} hops, repair request {req:.2} hops",
                    s.avg_report_hops
                ),
                None => println!(
                    "  {alg:<12} {robots:>2} robots: report {:.2} hops",
                    s.avg_report_hops
                ),
            }
            group.bench_with_input(BenchmarkId::new(alg.name(), robots), &cfg, |b, cfg| {
                b.iter(|| Simulation::run(cfg.clone()).metrics.report_hops.len())
            });
        }
    }
    group.finish();
}

bench_group!(benches, fig3);
bench_main!(benches);
