//! Figure 3 bench: average message hops per failure report / repair
//! request. The series is produced by the deterministic sweep engine;
//! Criterion then benchmarks each configuration's run.

use robonet_bench::selftime::{BenchmarkId, Criterion};
use robonet_bench::{bench_group, bench_main};

use robonet_core::sweep::SweepGrid;
use robonet_core::{Algorithm, PartitionKind, ScenarioConfig, Simulation};
use robonet_des::pool::resolve_jobs;

const SCALE: f64 = 64.0;

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::Fixed(PartitionKind::Square),
    Algorithm::Dynamic,
    Algorithm::Centralized,
];

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_hops");
    group.sample_size(10);
    println!("\nFigure 3 (time-compressed x{SCALE}): avg hops per failure");
    let grid = SweepGrid::from_configs(
        ALGORITHMS
            .iter()
            .flat_map(|&alg| {
                [2usize, 3]
                    .iter()
                    .map(move |&k| ScenarioConfig::paper(k, alg).with_seed(1).scaled(SCALE))
            })
            .collect(),
    );
    let result = grid.run(resolve_jobs(None));
    assert!(result.failed.is_empty(), "figure cells must not panic");
    for cell in &result.cells {
        let alg = cell.config.algorithm;
        let robots = cell.config.n_robots();
        let s = cell.metrics.summary();
        match s.avg_request_hops {
            Some(req) => println!(
                "  {alg:<12} {robots:>2} robots: report {:.2} hops, repair request {req:.2} hops",
                s.avg_report_hops
            ),
            None => println!(
                "  {alg:<12} {robots:>2} robots: report {:.2} hops",
                s.avg_report_hops
            ),
        }
        group.bench_with_input(
            BenchmarkId::new(alg.name(), robots),
            &cell.config,
            |b, cfg| b.iter(|| Simulation::run(cfg.clone()).metrics.report_hops.len()),
        );
    }
    group.finish();
}

bench_group!(benches, fig3);
bench_main!(benches);
