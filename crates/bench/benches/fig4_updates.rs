//! Figure 4 bench: average number of transmissions for robot location
//! updates per failure. Prints the series (time-compressed) and
//! benchmarks the run.

use robonet_bench::selftime::{BenchmarkId, Criterion};
use robonet_bench::{bench_group, bench_main};

use robonet_core::{Algorithm, PartitionKind, ScenarioConfig, Simulation};

const SCALE: f64 = 64.0;

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_updates");
    group.sample_size(10);
    println!("\nFigure 4 (time-compressed x{SCALE}): location-update transmissions per failure");
    for alg in [
        Algorithm::Dynamic,
        Algorithm::Fixed(PartitionKind::Square),
        Algorithm::Centralized,
    ] {
        for k in [2usize, 3] {
            let cfg = ScenarioConfig::paper(k, alg).with_seed(1).scaled(SCALE);
            let robots = cfg.n_robots();
            let s = Simulation::run(cfg.clone()).metrics.summary();
            println!(
                "  {alg:<12} {robots:>2} robots: {:>7.1} transmissions/failure",
                s.loc_update_tx_per_failure
            );
            group.bench_with_input(BenchmarkId::new(alg.name(), robots), &cfg, |b, cfg| {
                b.iter(|| Simulation::run(cfg.clone()).metrics.tx.total_tx())
            });
        }
    }
    group.finish();
}

bench_group!(benches, fig4);
bench_main!(benches);
