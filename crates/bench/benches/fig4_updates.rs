//! Figure 4 bench: average number of transmissions for robot location
//! updates per failure. The series is produced by the deterministic
//! sweep engine; Criterion then benchmarks each configuration's run.

use robonet_bench::selftime::{BenchmarkId, Criterion};
use robonet_bench::{bench_group, bench_main};

use robonet_core::sweep::SweepGrid;
use robonet_core::{Algorithm, PartitionKind, ScenarioConfig, Simulation};
use robonet_des::pool::resolve_jobs;

const SCALE: f64 = 64.0;

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::Dynamic,
    Algorithm::Fixed(PartitionKind::Square),
    Algorithm::Centralized,
];

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_updates");
    group.sample_size(10);
    println!("\nFigure 4 (time-compressed x{SCALE}): location-update transmissions per failure");
    let grid = SweepGrid::from_configs(
        ALGORITHMS
            .iter()
            .flat_map(|&alg| {
                [2usize, 3]
                    .iter()
                    .map(move |&k| ScenarioConfig::paper(k, alg).with_seed(1).scaled(SCALE))
            })
            .collect(),
    );
    let result = grid.run(resolve_jobs(None));
    assert!(result.failed.is_empty(), "figure cells must not panic");
    for cell in &result.cells {
        let alg = cell.config.algorithm;
        let robots = cell.config.n_robots();
        let s = cell.metrics.summary();
        println!(
            "  {alg:<12} {robots:>2} robots: {:>7.1} transmissions/failure",
            s.loc_update_tx_per_failure
        );
        group.bench_with_input(
            BenchmarkId::new(alg.name(), robots),
            &cell.config,
            |b, cfg| b.iter(|| Simulation::run(cfg.clone()).metrics.tx.total_tx()),
        );
    }
    group.finish();
}

bench_group!(benches, fig4);
bench_main!(benches);
