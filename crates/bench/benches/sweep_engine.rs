//! Sweep-engine bench: wall-clock of the deterministic work-stealing
//! engine at one worker vs. all available workers, over the smoke-size
//! paper grid (k ∈ {1, 2} × 3 algorithms × 2 seeds, time-compressed).
//!
//! Before timing anything it asserts the engine's contract: the
//! parallel run's per-cell results and merged aggregate are *equal* to
//! the sequential reference (bit-identical sketches included). The
//! speedup line makes the host's parallelism explicit — on a 1-core
//! runner the two timings coincide by construction.
//!
//! With `ROBONET_BENCH_JSON=<path>` the raw statistics land in a JSON
//! lines file (CI publishes them as `BENCH_sweep.json`).

use robonet_bench::selftime::{BenchmarkId, Criterion};
use robonet_bench::{bench_group, bench_main};

use robonet_bench::{paper_algorithms, SweepOptions};
use robonet_core::sweep::SweepGrid;
use robonet_des::pool::resolve_jobs;

fn smoke_grid() -> SweepGrid {
    let opts = SweepOptions {
        scale: 64.0,
        seeds: vec![1, 2],
        ks: vec![1, 2],
        algorithms: paper_algorithms(),
        jobs: None,
    };
    robonet_bench::grid(&opts)
}

fn sweep_engine(c: &mut Criterion) {
    let grid = smoke_grid();
    let jobs = resolve_jobs(None);

    let t0 = std::time::Instant::now();
    let sequential = grid.run(1);
    let seq_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let parallel = grid.run(jobs);
    let par_s = t1.elapsed().as_secs_f64();

    assert!(sequential.failed.is_empty() && parallel.failed.is_empty());
    assert_eq!(
        sequential.cells, parallel.cells,
        "per-cell results must match the sequential reference"
    );
    assert_eq!(
        sequential.merged, parallel.merged,
        "merged aggregate must match the sequential reference"
    );
    println!(
        "\nSweep engine ({} cells): sequential {seq_s:.2} s, {jobs} workers {par_s:.2} s \
         ({:.2}x, host parallelism {})",
        grid.len(),
        seq_s / par_s.max(1e-9),
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
    );

    let mut group = c.benchmark_group("sweep_engine");
    group.sample_size(10);
    for workers in [1, jobs] {
        group.bench_with_input(BenchmarkId::new("run", workers), &workers, |b, &workers| {
            b.iter(|| grid.run(workers).merged.replacements)
        });
    }
    group.finish();
}

bench_group!(benches, sweep_engine);
bench_main!(benches);
