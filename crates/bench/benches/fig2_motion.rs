//! Figure 2 bench: average robot traveling distance per failure, per
//! algorithm and robot count.
//!
//! The figure series itself is produced by the deterministic sweep
//! engine (all configurations fanned across the work-stealing pool,
//! results in declaration order regardless of worker count); Criterion
//! then measures wall time of a compressed run per configuration, so
//! `cargo bench` regenerates the figure's series (time-compressed; see
//! `cargo run -p robonet-bench --bin fig2` for the full-scale version).

use robonet_bench::selftime::{BenchmarkId, Criterion};
use robonet_bench::{bench_group, bench_main};

use robonet_core::sweep::SweepGrid;
use robonet_core::{Algorithm, PartitionKind, ScenarioConfig, Simulation};
use robonet_des::pool::resolve_jobs;

/// Compression used inside the bench loop; per-failure metrics are
/// preserved by design (see `ScenarioConfig::scaled`).
const SCALE: f64 = 64.0;

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::Fixed(PartitionKind::Square),
    Algorithm::Dynamic,
    Algorithm::Centralized,
];

fn fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_motion");
    group.sample_size(10);
    println!(
        "\nFigure 2 (time-compressed x{SCALE}): avg traveling distance per failure (m), \
         with repair latency (s)"
    );
    let grid = SweepGrid::from_configs(
        ALGORITHMS
            .iter()
            .flat_map(|&alg| {
                [2usize, 3]
                    .iter()
                    .map(move |&k| ScenarioConfig::paper(k, alg).with_seed(1).scaled(SCALE))
            })
            .collect(),
    );
    let result = grid.run(resolve_jobs(None));
    assert!(result.failed.is_empty(), "figure cells must not panic");
    for cell in &result.cells {
        let alg = cell.config.algorithm;
        let robots = cell.config.n_robots();
        let summary = cell.metrics.summary();
        println!(
            "  {alg:<12} {robots:>2} robots: {:>7.1} m over {} failures | \
             repair {:>6.1} s avg, {:>6.1} s p95",
            summary.avg_travel_per_failure,
            cell.metrics.replacements,
            summary.avg_repair_delay,
            summary.p95_repair_delay,
        );
        group.bench_with_input(
            BenchmarkId::new(alg.name(), robots),
            &cell.config,
            |b, cfg| b.iter(|| Simulation::run(cfg.clone()).metrics.replacements),
        );
    }
    group.finish();
}

bench_group!(benches, fig2);
bench_main!(benches);
