//! Figure 2 bench: average robot traveling distance per failure, per
//! algorithm and robot count.
//!
//! Criterion measures wall time of a compressed run per configuration
//! and — once per configuration — prints the paper metric itself, so
//! `cargo bench` regenerates the figure's series (time-compressed; see
//! `cargo run -p robonet-bench --bin fig2` for the full-scale version).

use robonet_bench::selftime::{BenchmarkId, Criterion};
use robonet_bench::{bench_group, bench_main};

use robonet_core::{Algorithm, PartitionKind, ScenarioConfig, Simulation};

/// Compression used inside the bench loop; per-failure metrics are
/// preserved by design (see `ScenarioConfig::scaled`).
const SCALE: f64 = 64.0;

fn fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_motion");
    group.sample_size(10);
    println!(
        "\nFigure 2 (time-compressed x{SCALE}): avg traveling distance per failure (m), \
         with repair latency (s)"
    );
    for alg in [
        Algorithm::Fixed(PartitionKind::Square),
        Algorithm::Dynamic,
        Algorithm::Centralized,
    ] {
        for k in [2usize, 3] {
            let cfg = ScenarioConfig::paper(k, alg).with_seed(1).scaled(SCALE);
            let robots = cfg.n_robots();
            let outcome = Simulation::run(cfg.clone());
            let summary = outcome.metrics.summary();
            println!(
                "  {alg:<12} {robots:>2} robots: {:>7.1} m over {} failures | \
                 repair {:>6.1} s avg, {:>6.1} s p95",
                summary.avg_travel_per_failure,
                outcome.metrics.replacements,
                summary.avg_repair_delay,
                summary.p95_repair_delay,
            );
            group.bench_with_input(BenchmarkId::new(alg.name(), robots), &cfg, |b, cfg| {
                b.iter(|| Simulation::run(cfg.clone()).metrics.replacements)
            });
        }
    }
    group.finish();
}

bench_group!(benches, fig2);
bench_main!(benches);
