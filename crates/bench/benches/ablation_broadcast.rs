//! Ablation for the paper's §6 future work: "more efficient location
//! update mechanisms to reduce the messaging overhead in the dynamic
//! and the fixed algorithms" — here, border-retransmit self-pruning
//! (only sensors at least a fraction of the radio range from the
//! transmitter relay a flood). Measures the messaging saved and the
//! price paid in `myrobot` accuracy.

use robonet_bench::selftime::{BenchmarkId, Criterion};
use robonet_bench::{bench_group, bench_main};

use robonet_core::{Algorithm, ScenarioConfig, Simulation};

const SCALE: f64 = 64.0;

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_broadcast");
    group.sample_size(10);
    println!("\nBroadcast-pruning ablation (dynamic algorithm, time-compressed x{SCALE}):");
    for prune in [None, Some(0.3), Some(0.5), Some(0.7)] {
        let mut cfg = ScenarioConfig::paper(2, Algorithm::Dynamic)
            .with_seed(1)
            .scaled(SCALE);
        cfg.broadcast_prune = prune;
        let s = Simulation::run(cfg.clone()).metrics.summary();
        let label = prune.map_or("off".to_string(), |f| format!("{f:.1}"));
        println!(
            "  prune {label:<4}: updates {:>6.1} tx/failure, myrobot accuracy {:>5.1}%, \
             delivery {:>5.1}%, travel {:>6.1} m",
            s.loc_update_tx_per_failure,
            s.myrobot_accuracy * 100.0,
            s.report_delivery_ratio * 100.0,
            s.avg_travel_per_failure
        );
        group.bench_with_input(BenchmarkId::new("prune", label), &cfg, |b, cfg| {
            b.iter(|| Simulation::run(cfg.clone()).metrics.tx.total_tx())
        });
    }
    group.finish();
}

bench_group!(benches, ablation);
bench_main!(benches);
