//! Baseline comparison against the paper's motivation: relocating
//! redundant *mobile sensors* (Wang et al. \[13\]) instead of dispatching
//! a few robots. Direct vs cascaded movement over a failure sequence,
//! reporting total distance, worst single-node distance, and how many
//! nodes needed mobility hardware.

use robonet_bench::selftime::Criterion;
use robonet_bench::{bench_group, bench_main};
use robonet_des::rng::{Rng, Xoshiro256};

use robonet_core::baseline::{MobileSensorField, RelocationPolicy};
use robonet_geom::{deploy, Bounds, Point};

fn scenario() -> (Vec<Point>, Vec<Point>, Vec<Point>) {
    let bounds = Bounds::square(400.0);
    let mut rng = Xoshiro256::seed_from_u64(3);
    let working = deploy::uniform(&mut rng, &bounds, 200);
    let spares = deploy::uniform(&mut rng, &bounds, 40);
    let failures: Vec<Point> = (0..40)
        .map(|_| Point::new(rng.gen_range(0.0..=400.0), rng.gen_range(0.0..=400.0)))
        .collect();
    (working, spares, failures)
}

fn run_policy(policy: RelocationPolicy) -> (f64, f64, usize) {
    let (working, spares, failures) = scenario();
    let mut field = MobileSensorField::new(working, spares);
    let mut total = 0.0;
    let mut worst: f64 = 0.0;
    let mut movers = 0;
    for &hole in &failures {
        if let Some(plan) = field.fill_hole(hole, policy) {
            total += plan.total_distance();
            worst = worst.max(plan.max_single_move());
            movers += plan.movers();
        }
    }
    (total, worst, movers)
}

fn baseline(c: &mut Criterion) {
    println!("\nMobile-sensor relocation baseline (40 failures, 40 spares, 400x400 m):");
    for policy in [RelocationPolicy::Direct, RelocationPolicy::Cascaded] {
        let (total, worst, movers) = run_policy(policy);
        println!(
            "  {policy:?}: total {total:>7.1} m, worst single node {worst:>6.1} m, {movers} node-moves"
        );
    }
    println!(
        "  (robot approach, for contrast: only k robots need mobility at all, each\n\
         travelling ~100 m per failure — run `--bin fig2` for the full numbers)"
    );
    let mut group = c.benchmark_group("ablation_baseline");
    group.bench_function("direct", |b| {
        b.iter(|| run_policy(RelocationPolicy::Direct))
    });
    group.bench_function("cascaded", |b| {
        b.iter(|| run_policy(RelocationPolicy::Cascaded))
    });
    group.finish();
}

bench_group!(benches, baseline);
bench_main!(benches);
