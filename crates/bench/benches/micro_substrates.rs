//! Microbenchmarks of the substrates the simulation is built on: event
//! queue throughput, Voronoi construction, geographic routing decision
//! rate, and raw MAC-engine frame throughput. These bound how large a
//! deployment the simulator can handle.

use robonet_bench::selftime::{Criterion, Throughput};
use robonet_bench::{bench_group, bench_main};
use robonet_des::rng::{Rng, Xoshiro256};

use robonet_des::{EventQueue, NodeId, SimTime};
use robonet_geom::{deploy, voronoi, Bounds, Point};
use robonet_net::{route, GeoHeader, NeighborTable, RouteDecision};

fn queue_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("schedule_pop_10k", |b| {
        let mut rng = Xoshiro256::seed_from_u64(1);
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos(u64::from(rng.next_u32())), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    group.finish();
}

fn voronoi_bench(c: &mut Criterion) {
    let bounds = Bounds::square(800.0);
    let mut rng = Xoshiro256::seed_from_u64(2);
    let sites = deploy::uniform(&mut rng, &bounds, 16);
    let mut group = c.benchmark_group("voronoi");
    group.bench_function("cells_16_sites", |b| {
        b.iter(|| voronoi::voronoi_cells(&sites, &bounds).len())
    });
    group.bench_function("nearest_site_16", |b| {
        b.iter(|| voronoi::nearest_site(&sites, Point::new(123.0, 456.0)))
    });
    group.finish();
}

fn routing_bench(c: &mut Criterion) {
    // A realistic neighbourhood: ~16 neighbours at the paper's density.
    let mut rng = Xoshiro256::seed_from_u64(3);
    let mut table = NeighborTable::new();
    for i in 0..16u32 {
        table.update(
            NodeId::new(i + 1),
            Point::new(rng.gen_range(-63.0..63.0), rng.gen_range(-63.0..63.0)),
            SimTime::ZERO,
        );
    }
    let dst = NodeId::new(999);
    let dst_loc = Point::new(400.0, 0.0);
    let mut group = c.benchmark_group("routing");
    group.throughput(Throughput::Elements(1));
    group.bench_function("greedy_decision", |b| {
        b.iter(|| {
            let mut hdr = GeoHeader::new(dst, dst_loc);
            matches!(
                route(NodeId::new(0), Point::ZERO, &table, &mut hdr, None),
                RouteDecision::Forward(_)
            )
        })
    });
    group.finish();
}

fn mac_bench(c: &mut Criterion) {
    use robonet_radio::medium::{Medium, NodeClass, RangeTable};
    use robonet_radio::{Frame, MacParams, RadioEngine, TrafficClass, UpcallBuf};

    let bounds = Bounds::square(400.0);
    let mut rng = Xoshiro256::seed_from_u64(4);
    let positions = deploy::uniform(&mut rng, &bounds, 200);
    let classes = vec![NodeClass::Sensor; 200];

    let mut group = c.benchmark_group("mac_engine");
    group.throughput(Throughput::Elements(200));
    group.bench_function("broadcast_round_200_nodes", |b| {
        b.iter(|| {
            let medium = Medium::new(bounds, RangeTable::default(), &positions, &classes);
            let mut engine: RadioEngine<u32> =
                RadioEngine::new(medium, MacParams::default(), Xoshiro256::seed_from_u64(5));
            let mut sched: robonet_des::Scheduler<robonet_radio::RadioEvent> =
                robonet_des::Scheduler::new();
            {
                let s = &mut sched;
                for i in 0..200u32 {
                    engine.send(
                        s.now(),
                        Frame {
                            src: NodeId::new(i),
                            dst: None,
                            bytes: 32,
                            class: TrafficClass::Beacon,
                            payload: i,
                        },
                        &mut |at, e| {
                            s.schedule_at(at, e);
                        },
                    );
                }
            }
            let mut out = UpcallBuf::new();
            let mut delivered = 0usize;
            while let Some(ev) = sched.next_event() {
                let now = sched.now();
                let s = &mut sched;
                engine.handle(
                    now,
                    ev,
                    &mut |at, e| {
                        s.schedule_at(at, e);
                    },
                    &mut out,
                );
                delivered += out.entries().len();
                out.clear();
            }
            delivered
        })
    });
    group.finish();
}

bench_group!(
    benches,
    queue_bench,
    voronoi_bench,
    routing_bench,
    mac_bench
);
bench_main!(benches);
