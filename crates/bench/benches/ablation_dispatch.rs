//! Ablation of the centralized manager's dispatch rule: the paper's
//! "closest robot" (§3.1) vs a `NearestIdle` extension where robots
//! piggyback queue lengths on their location updates and the manager
//! prefers idle robots. Run under increasing load (shrinking mean
//! lifetime) to expose the trade-off between extra travel and queueing
//! delay.

use robonet_bench::selftime::{BenchmarkId, Criterion};
use robonet_bench::{bench_group, bench_main};

use robonet_core::{Algorithm, DispatchPolicy, ScenarioConfig, Simulation};
use robonet_des::SimDuration;

const SCALE: f64 = 64.0;

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dispatch");
    group.sample_size(10);
    println!("\nDispatch-policy ablation (centralized, time-compressed x{SCALE}):");
    for lifetime in [250.0, 125.0, 62.5] {
        for policy in [DispatchPolicy::Nearest, DispatchPolicy::NearestIdle] {
            let mut cfg = ScenarioConfig::paper(2, Algorithm::Centralized)
                .with_seed(1)
                .scaled(SCALE);
            cfg.mean_lifetime = SimDuration::from_secs(lifetime);
            cfg.dispatch = policy;
            let s = Simulation::run(cfg.clone()).metrics.summary();
            println!(
                "  lifetime {lifetime:>6.1}s {policy:<12?}: delay {:>6.1}s travel {:>6.1}m repaired {:>4}/{:<4}",
                s.avg_repair_delay, s.avg_travel_per_failure, s.replacements, s.failures_occurred
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{policy:?}").to_lowercase(), lifetime as u64),
                &cfg,
                |b, cfg| b.iter(|| Simulation::run(cfg.clone()).metrics.replacements),
            );
        }
    }
    group.finish();
}

bench_group!(benches, ablation);
bench_main!(benches);
