//! Scale bench: packet-level simulator throughput at 1k/5k/10k sensors.
//!
//! The paper's fields stop at 800 sensors; this bench deploys paper-density
//! fields (50 sensors per 200 m × 200 m robot cell) at 1000, 5000 and
//! 10000 sensors and reports the scheduler's own throughput counters
//! (events/sec, sim-seconds per wall-second) alongside the self-timed
//! wall clock. With `ROBONET_BENCH_JSON=<path>` the raw statistics land
//! in `BENCH_scale.json`: `throughput_per_iter` is the (deterministic)
//! event count of the run, so `throughput_per_iter / median_ns * 1e9`
//! is the events-per-second trajectory tracked across refactors.

use robonet_bench::selftime::{BenchmarkId, Criterion, Throughput};
use robonet_bench::{bench_group, bench_main};

use robonet_core::{Algorithm, ScenarioConfig, Simulation};

/// Time compression inside the bench loop (see `ScenarioConfig::scaled`);
/// per-failure metrics and the event mix per sim-second are preserved.
const SCALE: f64 = 64.0;

/// The bench sizes as `(sensors, k)`: a k×k robot fleet with exactly
/// `sensors / k²` sensors per robot cell.
const SIZES: [(usize, usize); 3] = [(1_000, 5), (5_000, 10), (10_000, 10)];

/// Paper-density deployment hitting `n` sensors exactly with a k×k fleet:
/// the per-robot cell side grows with `sqrt(sensors_per_robot / 50)` so
/// sensor density (and hence MAC contention and neighbor degree) matches
/// the paper's 50 sensors per 200 m × 200 m cell at every size.
fn scale_config(n: usize, k: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper(k, Algorithm::Dynamic);
    let spr = n / (k * k);
    assert_eq!(spr * k * k, n, "sensor count must divide evenly into k²");
    cfg.sensors_per_robot = spr;
    cfg.area_per_robot_side = 200.0 * (spr as f64 / 50.0).sqrt();
    let cfg = cfg.with_seed(1).scaled(SCALE);
    cfg.validate().expect("scale config is valid");
    cfg
}

fn packet_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_scale");
    // One timed sample per size: a single run is seconds long, far above
    // timer noise, and the probe run below already warms the allocator.
    group.sample_size(1);
    println!("\nPacket-level scale sweep (fault-free, dynamic, time-compressed x{SCALE})");
    println!(
        "{:>8} {:>8} {:>12} {:>9} {:>13} {:>13}",
        "sensors", "robots", "events", "wall_s", "events/s", "sim-s/wall-s"
    );
    for (n, k) in SIZES {
        let cfg = scale_config(n, k);
        let outcome = Simulation::run(cfg.clone());
        let p = outcome.profile;
        println!(
            "{:>8} {:>8} {:>12} {:>9.2} {:>13.0} {:>13.1}",
            n,
            cfg.n_robots(),
            p.events_dispatched,
            p.wall_seconds,
            p.events_per_wall_second(),
            p.sim_seconds_per_wall_second(),
        );
        // Same config + seed → same event count every run, so the
        // deterministic dispatch total doubles as the throughput divisor.
        group.throughput(Throughput::Elements(p.events_dispatched));
        group.bench_with_input(BenchmarkId::new("run", n), &cfg, |b, cfg| {
            b.iter(|| Simulation::run(cfg.clone()).metrics.replacements)
        });
    }
    group.finish();
}

bench_group!(benches, packet_scale);
bench_main!(benches);
