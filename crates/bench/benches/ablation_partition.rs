//! Ablation for the paper's §4.3.1 remark: "other partition methods
//! (e.g., hexagon partition) show negligible difference in the
//! overheads" for the fixed algorithm. Runs square vs hexagonal
//! partitions and prints both overheads side by side.

use robonet_bench::selftime::{BenchmarkId, Criterion};
use robonet_bench::{bench_group, bench_main};

use robonet_core::{Algorithm, PartitionKind, ScenarioConfig, Simulation};

const SCALE: f64 = 64.0;

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_partition");
    group.sample_size(10);
    println!("\nPartition ablation (fixed algorithm, time-compressed x{SCALE}):");
    for kind in [PartitionKind::Square, PartitionKind::Hex] {
        for k in [2usize, 3] {
            let cfg = ScenarioConfig::paper(k, Algorithm::Fixed(kind))
                .with_seed(1)
                .scaled(SCALE);
            let robots = cfg.n_robots();
            let s = Simulation::run(cfg.clone()).metrics.summary();
            println!(
                "  {:<10} {robots:>2} robots: travel {:>6.1} m/failure, updates {:>6.1} tx/failure",
                format!("{kind:?}"),
                s.avg_travel_per_failure,
                s.loc_update_tx_per_failure
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}").to_lowercase(), robots),
                &cfg,
                |b, cfg| b.iter(|| Simulation::run(cfg.clone()).metrics.replacements),
            );
        }
    }
    group.finish();
}

bench_group!(benches, ablation);
bench_main!(benches);
