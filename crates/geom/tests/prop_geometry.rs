//! Property tests for the geometric invariants the coordination
//! algorithms rely on.

use proptest::prelude::*;

use robonet_geom::graph::UnitDiskGraph;
use robonet_geom::hull::convex_hull;
use robonet_geom::partition::{HexPartition, Partition, SquarePartition};
use robonet_geom::planar::{PlanarGraph, PlanarRule};
use robonet_geom::voronoi::{nearest_site, voronoi_cells};
use robonet_geom::{Bounds, ConvexPolygon, Point};

fn points_in(side: f64, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..side, 0.0..side).prop_map(|(x, y)| Point::new(x, y)), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Voronoi cells tile the bounds: total area equals the field area.
    #[test]
    fn voronoi_cells_tile_the_field(sites in points_in(500.0, 1..12)) {
        let b = Bounds::square(500.0);
        let cells = voronoi_cells(&sites, &b);
        let total: f64 = cells.iter().flatten().map(ConvexPolygon::area).sum();
        // Duplicate sites can make cells overlap; restrict to distinct.
        let mut distinct = sites.clone();
        distinct.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap().then(a.y.partial_cmp(&b.y).unwrap()));
        distinct.dedup_by(|a, b| a.distance_sq(*b) < 1e-12);
        if distinct.len() == sites.len() {
            prop_assert!((total - b.area()).abs() < 1e-3, "total {total}");
        }
    }

    /// Any point inside a Voronoi cell is (weakly) closest to that cell's
    /// site — membership and nearest-site agree.
    #[test]
    fn voronoi_membership_matches_nearest(
        sites in points_in(500.0, 2..10),
        probe in (0.0..500.0, 0.0..500.0),
    ) {
        let b = Bounds::square(500.0);
        let p = Point::new(probe.0, probe.1);
        let n = nearest_site(&sites, p).unwrap();
        let cells = voronoi_cells(&sites, &b);
        if let Some(cell) = &cells[n] {
            prop_assert!(cell.contains(p), "{p} not in its nearest site's cell");
        }
    }

    /// The convex hull contains every input point.
    #[test]
    fn hull_contains_inputs(pts in points_in(100.0, 3..40)) {
        let h = convex_hull(&pts);
        if h.len() >= 3 {
            let poly = ConvexPolygon::new(h).expect("hull is CCW convex");
            for &p in &pts {
                prop_assert!(poly.contains(p));
            }
        }
    }

    /// Gabriel planarization preserves connectivity of connected UDGs
    /// and produces no edge crossings.
    #[test]
    fn gabriel_preserves_connectivity(pts in points_in(200.0, 10..60)) {
        let g = UnitDiskGraph::build(Bounds::square(200.0), 50.0, &pts);
        prop_assume!(g.is_connected());
        let gg = PlanarGraph::build(&g, PlanarRule::Gabriel);
        prop_assert!(gg.is_connected(), "Gabriel graph disconnected");
        prop_assert_eq!(gg.crossings(g.positions()), 0, "Gabriel graph not planar");
    }

    /// RNG ⊆ Gabriel ⊆ UDG as edge sets.
    #[test]
    fn planar_subgraph_chain(pts in points_in(200.0, 5..50)) {
        let g = UnitDiskGraph::build(Bounds::square(200.0), 55.0, &pts);
        let gg = PlanarGraph::build(&g, PlanarRule::Gabriel);
        let rn = PlanarGraph::build(&g, PlanarRule::Rng);
        for u in 0..g.len() {
            for &v in rn.neighbors(u) {
                prop_assert!(gg.has_edge(u, v as usize));
            }
            for &v in gg.neighbors(u) {
                prop_assert!(g.has_edge(u, v as usize));
            }
        }
    }

    /// Every point maps to exactly one subarea, and subarea centres map
    /// to themselves — for both partition shapes.
    #[test]
    fn partitions_are_total_and_consistent(
        k in 1usize..6,
        probes in points_in(600.0, 1..50),
    ) {
        let b = Bounds::square(600.0);
        let sq = SquarePartition::new(b, k);
        let hx = HexPartition::new(b, k);
        for &p in &probes {
            prop_assert!(sq.subarea_of(p) < sq.len());
            prop_assert!(hx.subarea_of(p) < hx.len());
        }
        for i in 0..sq.len() {
            prop_assert_eq!(sq.subarea_of(sq.center(i)), i);
            prop_assert_eq!(hx.subarea_of(hx.center(i)), i);
        }
    }

    /// Half-plane clipping never grows a polygon.
    #[test]
    fn clipping_shrinks(
        a in -1.0f64..1.0,
        b in -1.0f64..1.0,
        c in -100.0f64..200.0,
    ) {
        prop_assume!(a.abs() + b.abs() > 1e-6);
        let poly = ConvexPolygon::from_bounds(&Bounds::square(100.0));
        if let Some(clipped) = poly.clip_halfplane(a, b, c) {
            prop_assert!(clipped.area() <= poly.area() + 1e-9);
            // And the clipped polygon's centroid satisfies the constraint.
            let cen = clipped.centroid();
            prop_assert!(a * cen.x + b * cen.y <= c + 1e-6);
        }
    }

    /// UDG adjacency is symmetric and respects the radius exactly.
    #[test]
    fn udg_adjacency_sound(pts in points_in(300.0, 2..60)) {
        let r = 63.0;
        let g = UnitDiskGraph::build(Bounds::square(300.0), r, &pts);
        for i in 0..g.len() {
            for &j in g.neighbors(i) {
                let j = j as usize;
                prop_assert!(g.position(i).distance(g.position(j)) <= r + 1e-9);
                prop_assert!(g.has_edge(j, i));
            }
        }
    }
}
