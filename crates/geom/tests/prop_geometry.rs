//! Property tests for the geometric invariants the coordination
//! algorithms rely on.

use robonet_des::check::{self, Gen, Outcome};

use robonet_geom::graph::UnitDiskGraph;
use robonet_geom::hull::convex_hull;
use robonet_geom::partition::{HexPartition, Partition, SquarePartition};
use robonet_geom::planar::{PlanarGraph, PlanarRule};
use robonet_geom::voronoi::{nearest_site, voronoi_cells};
use robonet_geom::{Bounds, ConvexPolygon, Point};

fn point_in(side: f64) -> Gen<Point> {
    check::pair(check::f64s(0.0..side), check::f64s(0.0..side)).map(|&(x, y)| Point::new(x, y))
}

fn points_in(side: f64, n: std::ops::Range<usize>) -> Gen<Vec<Point>> {
    check::vec_of(point_in(side), n)
}

/// Voronoi cells tile the bounds: total area equals the field area.
#[test]
fn voronoi_cells_tile_the_field() {
    check::forall(
        "voronoi_cells_tile_the_field",
        &points_in(500.0, 1..12),
        |sites| {
            let b = Bounds::square(500.0);
            let cells = voronoi_cells(sites, &b);
            let total: f64 = cells.iter().flatten().map(ConvexPolygon::area).sum();
            // Duplicate sites can make cells overlap; restrict to distinct.
            let mut distinct = sites.clone();
            distinct.sort_by(|a, b| {
                a.x.partial_cmp(&b.x)
                    .unwrap()
                    .then(a.y.partial_cmp(&b.y).unwrap())
            });
            distinct.dedup_by(|a, b| a.distance_sq(*b) < 1e-12);
            if distinct.len() == sites.len() {
                assert!((total - b.area()).abs() < 1e-3, "total {total}");
            }
            Outcome::Pass
        },
    );
}

/// Any point inside a Voronoi cell is (weakly) closest to that cell's
/// site — membership and nearest-site agree.
#[test]
fn voronoi_membership_matches_nearest() {
    check::forall(
        "voronoi_membership_matches_nearest",
        &check::pair(points_in(500.0, 2..10), point_in(500.0)),
        |(sites, p)| {
            let b = Bounds::square(500.0);
            let n = nearest_site(sites, *p).unwrap();
            let cells = voronoi_cells(sites, &b);
            if let Some(cell) = &cells[n] {
                assert!(cell.contains(*p), "{p} not in its nearest site's cell");
            }
            Outcome::Pass
        },
    );
}

/// The convex hull contains every input point.
#[test]
fn hull_contains_inputs() {
    check::forall("hull_contains_inputs", &points_in(100.0, 3..40), |pts| {
        let h = convex_hull(pts);
        if h.len() >= 3 {
            let poly = ConvexPolygon::new(h).expect("hull is CCW convex");
            for &p in pts {
                assert!(poly.contains(p));
            }
        }
        Outcome::Pass
    });
}

/// Gabriel planarization preserves connectivity of connected UDGs
/// and produces no edge crossings.
#[test]
fn gabriel_preserves_connectivity() {
    check::forall(
        "gabriel_preserves_connectivity",
        &points_in(200.0, 10..60),
        |pts| {
            let g = UnitDiskGraph::build(Bounds::square(200.0), 50.0, pts);
            if !g.is_connected() {
                return Outcome::Discard;
            }
            let gg = PlanarGraph::build(&g, PlanarRule::Gabriel);
            assert!(gg.is_connected(), "Gabriel graph disconnected");
            assert_eq!(gg.crossings(g.positions()), 0, "Gabriel graph not planar");
            Outcome::Pass
        },
    );
}

/// RNG ⊆ Gabriel ⊆ UDG as edge sets.
#[test]
fn planar_subgraph_chain() {
    check::forall("planar_subgraph_chain", &points_in(200.0, 5..50), |pts| {
        let g = UnitDiskGraph::build(Bounds::square(200.0), 55.0, pts);
        let gg = PlanarGraph::build(&g, PlanarRule::Gabriel);
        let rn = PlanarGraph::build(&g, PlanarRule::Rng);
        for u in 0..g.len() {
            for &v in rn.neighbors(u) {
                assert!(gg.has_edge(u, v as usize));
            }
            for &v in gg.neighbors(u) {
                assert!(g.has_edge(u, v as usize));
            }
        }
        Outcome::Pass
    });
}

/// Every point maps to exactly one subarea, and subarea centres map
/// to themselves — for both partition shapes.
#[test]
fn partitions_are_total_and_consistent() {
    check::forall(
        "partitions_are_total_and_consistent",
        &check::pair(check::usizes(1..6), points_in(600.0, 1..50)),
        |(k, probes)| {
            let b = Bounds::square(600.0);
            let sq = SquarePartition::new(b, *k);
            let hx = HexPartition::new(b, *k);
            for &p in probes {
                assert!(sq.subarea_of(p) < sq.len());
                assert!(hx.subarea_of(p) < hx.len());
            }
            for i in 0..sq.len() {
                assert_eq!(sq.subarea_of(sq.center(i)), i);
                assert_eq!(hx.subarea_of(hx.center(i)), i);
            }
            Outcome::Pass
        },
    );
}

/// Half-plane clipping never grows a polygon.
#[test]
fn clipping_shrinks() {
    check::forall(
        "clipping_shrinks",
        &check::triple(
            check::f64s(-1.0..1.0),
            check::f64s(-1.0..1.0),
            check::f64s(-100.0..200.0),
        ),
        |&(a, b, c)| {
            if a.abs() + b.abs() <= 1e-6 {
                return Outcome::Discard;
            }
            let poly = ConvexPolygon::from_bounds(&Bounds::square(100.0));
            if let Some(clipped) = poly.clip_halfplane(a, b, c) {
                assert!(clipped.area() <= poly.area() + 1e-9);
                // And the clipped polygon's centroid satisfies the constraint.
                let cen = clipped.centroid();
                assert!(a * cen.x + b * cen.y <= c + 1e-6);
            }
            Outcome::Pass
        },
    );
}

/// UDG adjacency is symmetric and respects the radius exactly.
#[test]
fn udg_adjacency_sound() {
    check::forall("udg_adjacency_sound", &points_in(300.0, 2..60), |pts| {
        let r = 63.0;
        let g = UnitDiskGraph::build(Bounds::square(300.0), r, pts);
        for i in 0..g.len() {
            for &j in g.neighbors(i) {
                let j = j as usize;
                assert!(g.position(i).distance(g.position(j)) <= r + 1e-9);
                assert!(g.has_edge(j, i));
            }
        }
        Outcome::Pass
    });
}
