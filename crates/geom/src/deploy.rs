//! Node deployment (paper §2(a): "randomly uniformly distributed in a
//! 2-dimensional field").

use robonet_des::rng::Rng;

use crate::point::{Bounds, Point};

/// Samples `n` points independently and uniformly inside `bounds`.
///
/// ```
/// use robonet_des::rng::Xoshiro256;
/// use robonet_geom::{deploy::uniform, Bounds};
///
/// let mut rng = Xoshiro256::seed_from_u64(1);
/// let pts = uniform(&mut rng, &Bounds::square(200.0), 50);
/// assert_eq!(pts.len(), 50);
/// assert!(pts.iter().all(|p| Bounds::square(200.0).contains(*p)));
/// ```
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, bounds: &Bounds, n: usize) -> Vec<Point> {
    (0..n).map(|_| uniform_point(rng, bounds)).collect()
}

/// Samples one point uniformly inside `bounds` (x drawn before y — the
/// draw order [`uniform`] has always used, which golden artifacts pin).
pub fn uniform_point<R: Rng + ?Sized>(rng: &mut R, bounds: &Bounds) -> Point {
    Point::new(
        rng.gen_range(bounds.min().x..=bounds.max().x),
        rng.gen_range(bounds.min().y..=bounds.max().y),
    )
}

/// Samples `n` points on a jittered grid: near-uniform coverage without
/// the clumps and voids of pure uniform sampling. Useful for experiments
/// that need guaranteed initial coverage.
pub fn jittered_grid<R: Rng + ?Sized>(rng: &mut R, bounds: &Bounds, n: usize) -> Vec<Point> {
    if n == 0 {
        return Vec::new();
    }
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let w = bounds.width() / cols as f64;
    let h = bounds.height() / rows as f64;
    let mut out = Vec::with_capacity(n);
    'outer: for r in 0..rows {
        for c in 0..cols {
            if out.len() == n {
                break 'outer;
            }
            out.push(Point::new(
                bounds.min().x + c as f64 * w + rng.gen_range(0.0..w.max(f64::MIN_POSITIVE)),
                bounds.min().y + r as f64 * h + rng.gen_range(0.0..h.max(f64::MIN_POSITIVE)),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use robonet_des::rng::Xoshiro256;

    fn rng(seed: u64) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(seed)
    }

    #[test]
    fn uniform_points_inside_bounds() {
        let b = Bounds::new(Point::new(10.0, 20.0), Point::new(30.0, 25.0));
        let mut r = rng(5);
        let pts = uniform(&mut r, &b, 500);
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|p| b.contains(*p)));
    }

    #[test]
    fn uniform_is_reproducible() {
        let b = Bounds::square(100.0);
        let a = uniform(&mut rng(9), &b, 20);
        let c = uniform(&mut rng(9), &b, 20);
        assert_eq!(a, c);
        let d = uniform(&mut rng(10), &b, 20);
        assert_ne!(a, d);
    }

    #[test]
    fn uniform_covers_quadrants() {
        let b = Bounds::square(100.0);
        let pts = uniform(&mut rng(1), &b, 4000);
        let c = b.center();
        let q1 = pts.iter().filter(|p| p.x < c.x && p.y < c.y).count();
        let q2 = pts.iter().filter(|p| p.x >= c.x && p.y < c.y).count();
        let q3 = pts.iter().filter(|p| p.x < c.x && p.y >= c.y).count();
        let q4 = pts.iter().filter(|p| p.x >= c.x && p.y >= c.y).count();
        for q in [q1, q2, q3, q4] {
            assert!(
                (q as f64 - 1000.0).abs() < 120.0,
                "quadrant count {q} far from 1000"
            );
        }
    }

    #[test]
    fn jittered_grid_count_and_bounds() {
        let b = Bounds::square(50.0);
        for n in [0, 1, 7, 16, 50] {
            let pts = jittered_grid(&mut rng(2), &b, n);
            assert_eq!(pts.len(), n);
            assert!(pts.iter().all(|p| b.contains(*p)));
        }
    }

    #[test]
    fn jittered_grid_spreads_points() {
        // Max nearest-neighbour distance should be bounded: no giant void.
        let b = Bounds::square(100.0);
        let pts = jittered_grid(&mut rng(3), &b, 100);
        for p in &pts {
            let nn = pts
                .iter()
                .filter(|q| *q != p)
                .map(|q| q.distance(*p))
                .fold(f64::INFINITY, f64::min);
            assert!(nn < 30.0, "point {p} isolated by {nn} m");
        }
    }
}
