//! Unit-disk connectivity graphs.
//!
//! Two sensors can exchange beacons when within radio range of each
//! other; the resulting unit-disk graph (UDG) is what geographic routing
//! operates on and what the planarization in [`crate::planar`] filters.

use crate::point::{Bounds, Point};
use crate::spatial::GridIndex;

/// An undirected unit-disk graph over a set of node positions.
#[derive(Debug, Clone)]
pub struct UnitDiskGraph {
    positions: Vec<Point>,
    radius: f64,
    adjacency: Vec<Vec<u32>>,
}

impl UnitDiskGraph {
    /// Builds the UDG connecting every pair of points within `radius`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not positive and finite or a point lies
    /// outside `bounds`.
    pub fn build(bounds: Bounds, radius: f64, positions: &[Point]) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "radius must be positive"
        );
        let index = GridIndex::build(bounds, radius, positions);
        let mut adjacency = vec![Vec::new(); positions.len()];
        for (i, &p) in positions.iter().enumerate() {
            index.for_each_within(p, radius, |j| {
                if j != i {
                    adjacency[i].push(j as u32);
                }
            });
            adjacency[i].sort_unstable();
        }
        UnitDiskGraph {
            positions: positions.to_vec(),
            radius,
            adjacency,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The communication radius the graph was built with.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Position of node `i`.
    pub fn position(&self, i: usize) -> Point {
        self.positions[i]
    }

    /// All node positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Neighbours of node `i`, sorted by index.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.adjacency[i]
    }

    /// Returns `true` if `i` and `j` are connected by an edge.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.adjacency[i].binary_search(&(j as u32)).is_ok()
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Returns `true` if every node can reach every other node.
    ///
    /// The paper's deployments are dense enough (50 nodes per
    /// 200 × 200 m² with 63 m range) that disconnection is rare, but
    /// experiments verify it rather than assume it.
    pub fn is_connected(&self) -> bool {
        if self.positions.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.positions.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            for &j in &self.adjacency[i] {
                let j = j as usize;
                if !seen[j] {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == self.positions.len()
    }

    /// Shortest hop-count from `from` to `to` (BFS), or `None` if
    /// unreachable. Ground truth for validating geographic routing's hop
    /// counts in tests.
    pub fn hop_distance(&self, from: usize, to: usize) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.positions.len()];
        dist[from] = 0;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(i) = queue.pop_front() {
            for &j in &self.adjacency[i] {
                let j = j as usize;
                if dist[j] == usize::MAX {
                    dist[j] = dist[i] + 1;
                    if j == to {
                        return Some(dist[j]);
                    }
                    queue.push_back(j);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn line_graph() -> UnitDiskGraph {
        // Chain of 5 nodes 10 m apart, radius 12 connects only adjacent.
        let pts: Vec<Point> = (0..5).map(|i| p(i as f64 * 10.0, 0.0)).collect();
        UnitDiskGraph::build(Bounds::square(100.0), 12.0, &pts)
    }

    #[test]
    fn adjacency_is_symmetric_and_correct() {
        let g = line_graph();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        for i in 0..g.len() {
            for &j in g.neighbors(i) {
                assert!(g.has_edge(j as usize, i), "edge {i}-{j} not symmetric");
            }
        }
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn connectivity_detection() {
        let g = line_graph();
        assert!(g.is_connected());
        let pts = vec![p(0.0, 0.0), p(50.0, 50.0)];
        let g2 = UnitDiskGraph::build(Bounds::square(100.0), 10.0, &pts);
        assert!(!g2.is_connected());
        let empty = UnitDiskGraph::build(Bounds::square(10.0), 1.0, &[]);
        assert!(empty.is_connected(), "vacuously connected");
        assert!(empty.is_empty());
    }

    #[test]
    fn hop_distances() {
        let g = line_graph();
        assert_eq!(g.hop_distance(0, 0), Some(0));
        assert_eq!(g.hop_distance(0, 1), Some(1));
        assert_eq!(g.hop_distance(0, 4), Some(4));
        let pts = vec![p(0.0, 0.0), p(50.0, 50.0)];
        let g2 = UnitDiskGraph::build(Bounds::square(100.0), 10.0, &pts);
        assert_eq!(g2.hop_distance(0, 1), None);
    }

    #[test]
    fn radius_edge_inclusive() {
        let pts = vec![p(0.0, 0.0), p(10.0, 0.0)];
        let g = UnitDiskGraph::build(Bounds::square(20.0), 10.0, &pts);
        assert!(g.has_edge(0, 1), "exactly-at-radius pairs connect");
    }
}
