//! Bounded Voronoi diagrams.
//!
//! The dynamic distributed manager algorithm (paper §3.3) implicitly
//! partitions the field into the Voronoi cells of the robots: every
//! sensor reports to the closest robot. This module computes those cells
//! explicitly for analysis, visualisation (Fig. 1) and for the
//! "who-should-switch" region when a robot moves.
//!
//! With at most a few dozen robots, the O(n²) half-plane-clipping
//! construction is simpler and faster in practice than Fortune's sweep.

use crate::point::{Bounds, Point};
use crate::polygon::ConvexPolygon;

/// Computes the bounded Voronoi cell of `sites[index]` inside `bounds`.
///
/// Returns `None` when the cell is empty — only possible with duplicate
/// sites or a site outside the bounds.
///
/// # Panics
///
/// Panics if `index` is out of range.
pub fn voronoi_cell(sites: &[Point], index: usize, bounds: &Bounds) -> Option<ConvexPolygon> {
    let site = sites[index];
    let mut cell = ConvexPolygon::from_bounds(bounds);
    for (j, &other) in sites.iter().enumerate() {
        if j == index || other.distance_sq(site) == 0.0 {
            continue;
        }
        cell = cell.clip_to_bisector(site, other)?;
    }
    Some(cell)
}

/// Computes all bounded Voronoi cells; `result[i]` is the cell of
/// `sites[i]` (or `None` if empty, see [`voronoi_cell`]).
///
/// ```
/// use robonet_geom::{Bounds, Point};
/// use robonet_geom::voronoi::voronoi_cells;
///
/// let sites = [Point::new(50.0, 50.0), Point::new(150.0, 50.0)];
/// let cells = voronoi_cells(&sites, &Bounds::square(200.0));
/// let total: f64 = cells.iter().flatten().map(|c| c.area()).sum();
/// assert!((total - 200.0 * 200.0).abs() < 1e-6); // cells tile the field
/// ```
pub fn voronoi_cells(sites: &[Point], bounds: &Bounds) -> Vec<Option<ConvexPolygon>> {
    (0..sites.len())
        .map(|i| voronoi_cell(sites, i, bounds))
        .collect()
}

/// Index of the site nearest to `p`, or `None` for an empty site list.
///
/// Ties break toward the lowest index, matching how a sensor keeps its
/// current `myrobot` unless another robot is *strictly* closer.
pub fn nearest_site(sites: &[Point], p: Point) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &s) in sites.iter().enumerate() {
        let d = s.distance_sq(p);
        match best {
            Some((_, bd)) if d >= bd => {}
            _ => best = Some((i, d)),
        }
    }
    best.map(|(i, _)| i)
}

/// The region of points whose nearest site changes when site `moving`
/// relocates from `sites[moving]` to `new_pos` — the shaded area of the
/// paper's Fig. 1(b), i.e. where sensors must switch `myrobot`.
///
/// Returned as a predicate because the region (a union of half-plane
/// intersections) is generally non-convex.
pub fn switch_region_predicate(
    sites: &[Point],
    moving: usize,
    new_pos: Point,
) -> impl Fn(Point) -> bool + '_ {
    move |p: Point| {
        let nearest_with = |moved_to: Point| {
            let mut best = f64::INFINITY;
            let mut best_i = usize::MAX;
            for (i, &s) in sites.iter().enumerate() {
                let pos = if i == moving { moved_to } else { s };
                let d = pos.distance_sq(p);
                if d < best {
                    best = d;
                    best_i = i;
                }
            }
            best_i
        };
        nearest_with(sites[moving]) != nearest_with(new_pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sites_split_evenly() {
        let b = Bounds::square(100.0);
        let sites = [Point::new(25.0, 50.0), Point::new(75.0, 50.0)];
        let cells = voronoi_cells(&sites, &b);
        let a0 = cells[0].as_ref().unwrap().area();
        let a1 = cells[1].as_ref().unwrap().area();
        assert!((a0 - 5000.0).abs() < 1e-6);
        assert!((a1 - 5000.0).abs() < 1e-6);
    }

    #[test]
    fn cells_tile_the_bounds() {
        let b = Bounds::square(200.0);
        let sites = [
            Point::new(30.0, 40.0),
            Point::new(160.0, 50.0),
            Point::new(100.0, 150.0),
            Point::new(50.0, 120.0),
            Point::new(170.0, 180.0),
        ];
        let cells = voronoi_cells(&sites, &b);
        let total: f64 = cells.iter().flatten().map(|c| c.area()).sum();
        assert!(
            (total - b.area()).abs() < 1e-6,
            "total {total} != {}",
            b.area()
        );
    }

    #[test]
    fn cell_contains_its_site_and_no_other() {
        let b = Bounds::square(200.0);
        let sites = [
            Point::new(30.0, 40.0),
            Point::new(160.0, 50.0),
            Point::new(100.0, 150.0),
        ];
        let cells = voronoi_cells(&sites, &b);
        for (i, cell) in cells.iter().enumerate() {
            let cell = cell.as_ref().unwrap();
            assert!(cell.contains(sites[i]));
            for (j, &other) in sites.iter().enumerate() {
                if i != j {
                    assert!(!cell.contains(other), "site {j} inside cell {i}");
                }
            }
        }
    }

    #[test]
    fn nearest_site_matches_cells() {
        let b = Bounds::square(200.0);
        let sites = [
            Point::new(30.0, 40.0),
            Point::new(160.0, 50.0),
            Point::new(100.0, 150.0),
            Point::new(40.0, 170.0),
        ];
        let cells = voronoi_cells(&sites, &b);
        // Sample a grid; each point's nearest site's cell must contain it.
        for ix in 0..20 {
            for iy in 0..20 {
                let p = Point::new(5.0 + ix as f64 * 10.0, 5.0 + iy as f64 * 10.0);
                let n = nearest_site(&sites, p).unwrap();
                assert!(
                    cells[n].as_ref().unwrap().contains(p),
                    "{p} not in cell of its nearest site {n}"
                );
            }
        }
    }

    #[test]
    fn nearest_site_empty_and_ties() {
        assert_eq!(nearest_site(&[], Point::ZERO), None);
        let sites = [Point::new(-1.0, 0.0), Point::new(1.0, 0.0)];
        assert_eq!(
            nearest_site(&sites, Point::ZERO),
            Some(0),
            "tie → lowest index"
        );
    }

    #[test]
    fn single_site_owns_everything() {
        let b = Bounds::square(50.0);
        let cells = voronoi_cells(&[Point::new(10.0, 10.0)], &b);
        assert!((cells[0].as_ref().unwrap().area() - b.area()).abs() < 1e-9);
    }

    #[test]
    fn duplicate_sites_do_not_panic() {
        let b = Bounds::square(50.0);
        let p = Point::new(10.0, 10.0);
        let cells = voronoi_cells(&[p, p], &b);
        // Duplicates share the whole field (clipping skips zero-distance
        // pairs) — the important property is no panic and no empty total.
        assert!(cells.iter().any(|c| c.is_some()));
    }

    #[test]
    fn switch_region_flags_stolen_points() {
        let sites = [Point::new(50.0, 50.0), Point::new(150.0, 50.0)];
        // Robot 0 moves far to the right: points near the old boundary
        // switch to... robot 0 now owns the right side.
        let pred = switch_region_predicate(&sites, 0, Point::new(190.0, 50.0));
        assert!(
            pred(Point::new(180.0, 50.0)),
            "right edge switches to mover"
        );
        assert!(
            pred(Point::new(60.0, 50.0)),
            "mover's old home switches away"
        );
        assert!(
            !pred(Point::new(150.0, 50.0)),
            "other site keeps its own spot"
        );
    }
}
