//! 2D computational geometry for the `robonet` workspace.
//!
//! Everything spatial that *Replacing Failed Sensor Nodes by Mobile
//! Robots* (Mei et al., ICDCS 2006) relies on is implemented here:
//!
//! - [`Point`] / [`Vec2`] / [`Bounds`]: the planar field sensors and
//!   robots live in,
//! - [`voronoi`]: bounded Voronoi diagrams — the implicit partition the
//!   dynamic distributed manager algorithm maintains (paper Fig. 1),
//! - [`planar`]: Gabriel-graph and relative-neighborhood-graph
//!   planarization used by face routing for hole recovery (GPSR/GFG),
//! - [`partition`]: the fixed algorithm's static square (and hexagonal)
//!   subarea partitions,
//! - [`graph`]: unit-disk connectivity with a grid spatial index,
//! - [`deploy`]: random uniform node deployment (paper §2(a)).
//!
//! # Example
//!
//! ```
//! use robonet_geom::{Bounds, Point};
//! use robonet_geom::voronoi::nearest_site;
//!
//! let robots = [Point::new(50.0, 50.0), Point::new(150.0, 50.0)];
//! let sensor = Point::new(60.0, 40.0);
//! assert_eq!(nearest_site(&robots, sensor), Some(0));
//! let field = Bounds::new(Point::ZERO, Point::new(200.0, 100.0));
//! assert!(field.contains(sensor));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deploy;
pub mod graph;
pub mod hull;
pub mod partition;
pub mod planar;
mod point;
pub mod polygon;
pub mod segment;
pub mod spatial;
pub mod voronoi;

pub use point::{Bounds, Point, Vec2};
pub use polygon::ConvexPolygon;
