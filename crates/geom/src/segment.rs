//! Orientation predicates and segment operations.

use crate::point::{Point, Vec2};

/// Tolerance for degenerate geometric predicates, in metres.
///
/// Node coordinates are O(10³) m and come from random deployment, so
/// exact degeneracies are measure-zero; a small absolute epsilon is
/// sufficient and keeps predicates fast.
pub const EPS: f64 = 1e-9;

/// Which side of a directed line a point lies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// The point is counter-clockwise (left) of the directed line.
    CounterClockwise,
    /// The point is clockwise (right) of the directed line.
    Clockwise,
    /// The three points are (numerically) collinear.
    Collinear,
}

/// Classifies `c` relative to the directed line `a → b`.
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    let v = (b - a).cross(c - a);
    if v > EPS {
        Orientation::CounterClockwise
    } else if v < -EPS {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from its endpoints.
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length in metres.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Returns `true` if this segment properly or improperly intersects
    /// `other` (shared endpoints count as intersecting).
    pub fn intersects(&self, other: &Segment) -> bool {
        let d1 = orientation(other.a, other.b, self.a);
        let d2 = orientation(other.a, other.b, self.b);
        let d3 = orientation(self.a, self.b, other.a);
        let d4 = orientation(self.a, self.b, other.b);

        if d1 != d2
            && d3 != d4
            && d1 != Orientation::Collinear
            && d2 != Orientation::Collinear
            && d3 != Orientation::Collinear
            && d4 != Orientation::Collinear
        {
            return true;
        }
        // Collinear / endpoint cases.
        (d1 == Orientation::Collinear && on_segment(other, self.a))
            || (d2 == Orientation::Collinear && on_segment(other, self.b))
            || (d3 == Orientation::Collinear && on_segment(self, other.a))
            || (d4 == Orientation::Collinear && on_segment(self, other.b))
    }

    /// Returns the intersection point of the two *lines* through the
    /// segments, if they are not parallel, together with the parameter `t`
    /// along `self` (`t ∈ [0, 1]` means the crossing lies on `self`).
    pub fn line_intersection(&self, other: &Segment) -> Option<(Point, f64)> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        if denom.abs() <= EPS {
            return None;
        }
        let t = (other.a - self.a).cross(s) / denom;
        Some((self.a + r * t, t))
    }

    /// Distance from `p` to the closest point of the segment.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        p.distance(self.closest_point(p))
    }

    /// The point of the segment closest to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        let ab = self.b - self.a;
        let len_sq = ab.length_sq();
        if len_sq <= EPS * EPS {
            return self.a;
        }
        let t = ((p - self.a).dot(ab) / len_sq).clamp(0.0, 1.0);
        self.a + ab * t
    }

    /// The segment's midpoint.
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Unit direction from `a` to `b`, or `None` for a degenerate segment.
    pub fn direction(&self) -> Option<Vec2> {
        (self.b - self.a).normalized()
    }
}

fn on_segment(seg: &Segment, p: Point) -> bool {
    p.x >= seg.a.x.min(seg.b.x) - EPS
        && p.x <= seg.a.x.max(seg.b.x) + EPS
        && p.y >= seg.a.y.min(seg.b.y) - EPS
        && p.y <= seg.a.y.max(seg.b.y) + EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn orientation_cases() {
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(0.5, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(0.5, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = Segment::new(p(0.0, 0.0), p(2.0, 2.0));
        let s2 = Segment::new(p(0.0, 2.0), p(2.0, 0.0));
        assert!(s1.intersects(&s2));
        assert!(s2.intersects(&s1));
    }

    #[test]
    fn disjoint_segments_do_not_intersect() {
        let s1 = Segment::new(p(0.0, 0.0), p(1.0, 0.0));
        let s2 = Segment::new(p(0.0, 1.0), p(1.0, 1.0));
        assert!(!s1.intersects(&s2));
    }

    #[test]
    fn touching_at_endpoint_counts() {
        let s1 = Segment::new(p(0.0, 0.0), p(1.0, 1.0));
        let s2 = Segment::new(p(1.0, 1.0), p(2.0, 0.0));
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn collinear_overlap_counts() {
        let s1 = Segment::new(p(0.0, 0.0), p(2.0, 0.0));
        let s2 = Segment::new(p(1.0, 0.0), p(3.0, 0.0));
        assert!(s1.intersects(&s2));
        let s3 = Segment::new(p(3.0, 0.0), p(4.0, 0.0));
        assert!(!s1.intersects(&s3), "collinear but disjoint");
    }

    #[test]
    fn line_intersection_point_and_parameter() {
        let s1 = Segment::new(p(0.0, 0.0), p(4.0, 0.0));
        let s2 = Segment::new(p(1.0, -1.0), p(1.0, 1.0));
        let (pt, t) = s1.line_intersection(&s2).unwrap();
        assert!((pt.x - 1.0).abs() < 1e-12 && pt.y.abs() < 1e-12);
        assert!((t - 0.25).abs() < 1e-12);
        let parallel = Segment::new(p(0.0, 1.0), p(4.0, 1.0));
        assert!(s1.line_intersection(&parallel).is_none());
    }

    #[test]
    fn point_distance_regions() {
        let s = Segment::new(p(0.0, 0.0), p(10.0, 0.0));
        assert_eq!(s.distance_to_point(p(5.0, 3.0)), 3.0, "interior projection");
        assert_eq!(s.distance_to_point(p(-3.0, 4.0)), 5.0, "before start");
        assert_eq!(s.distance_to_point(p(13.0, 4.0)), 5.0, "past end");
        assert_eq!(s.closest_point(p(5.0, 3.0)), p(5.0, 0.0));
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(p(1.0, 1.0), p(1.0, 1.0));
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.closest_point(p(4.0, 5.0)), p(1.0, 1.0));
        assert!(s.direction().is_none());
    }
}
