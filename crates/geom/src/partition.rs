//! Static field partitions for the fixed distributed manager algorithm.
//!
//! The fixed algorithm (paper §3.2) splits the field into equal-size
//! subareas, one robot per subarea. The paper uses squares and notes that
//! other partitions (e.g. hexagons) "show negligible difference"
//! (§4.3.1) — both are implemented so that claim can be measured
//! (`ablation_partition` bench).

use crate::point::{Bounds, Point};

/// A static partition of a rectangular field into `len()` subareas.
pub trait Partition {
    /// Number of subareas.
    fn len(&self) -> usize;

    /// Returns `true` if the partition has no subareas.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the subarea containing `p` (points outside the field are
    /// clamped to the nearest subarea).
    fn subarea_of(&self, p: Point) -> usize;

    /// The point a robot parks at for subarea `i` (its "centre").
    fn center(&self, i: usize) -> Point;
}

/// A `k × k` grid of equal squares — the paper's partition method.
#[derive(Debug, Clone)]
pub struct SquarePartition {
    bounds: Bounds,
    k: usize,
}

impl SquarePartition {
    /// Partitions `bounds` into `k × k` squares.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(bounds: Bounds, k: usize) -> Self {
        assert!(k > 0, "partition requires at least one cell per side");
        SquarePartition { bounds, k }
    }

    /// Cells per side.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The bounds of subarea `i`.
    pub fn subarea_bounds(&self, i: usize) -> Bounds {
        let (cx, cy) = (i % self.k, i / self.k);
        let w = self.bounds.width() / self.k as f64;
        let h = self.bounds.height() / self.k as f64;
        let min = Point::new(
            self.bounds.min().x + cx as f64 * w,
            self.bounds.min().y + cy as f64 * h,
        );
        Bounds::new(min, Point::new(min.x + w, min.y + h))
    }
}

impl Partition for SquarePartition {
    fn len(&self) -> usize {
        self.k * self.k
    }

    fn subarea_of(&self, p: Point) -> usize {
        let w = self.bounds.width() / self.k as f64;
        let h = self.bounds.height() / self.k as f64;
        let cx = (((p.x - self.bounds.min().x) / w).floor() as isize).clamp(0, self.k as isize - 1);
        let cy = (((p.y - self.bounds.min().y) / h).floor() as isize).clamp(0, self.k as isize - 1);
        cy as usize * self.k + cx as usize
    }

    fn center(&self, i: usize) -> Point {
        self.subarea_bounds(i).center()
    }
}

/// A hexagonal ("brick offset") partition with the same number of cells
/// as a `k × k` square partition: rows at the usual height, odd rows
/// shifted by half a cell width, wrapping at the field edge.
///
/// This approximates a hexagonal tiling while keeping exactly `k²` equal-
/// area cells, which is what matters for the fixed algorithm (one robot
/// per cell, equal load).
#[derive(Debug, Clone)]
pub struct HexPartition {
    bounds: Bounds,
    k: usize,
}

impl HexPartition {
    /// Partitions `bounds` into `k` rows of `k` offset cells.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(bounds: Bounds, k: usize) -> Self {
        assert!(k > 0, "partition requires at least one cell per side");
        HexPartition { bounds, k }
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let w = self.bounds.width() / self.k as f64;
        let h = self.bounds.height() / self.k as f64;
        let row = (((p.y - self.bounds.min().y) / h).floor() as isize).clamp(0, self.k as isize - 1)
            as usize;
        let offset = if row % 2 == 1 { 0.5 * w } else { 0.0 };
        // Columns wrap: the half cell hanging off the right edge is the
        // same cell as the half at the left edge, keeping areas equal.
        let x = p.x - self.bounds.min().x - offset;
        let x = x.rem_euclid(self.bounds.width());
        let col = ((x / w).floor() as isize).clamp(0, self.k as isize - 1) as usize;
        (row, col)
    }
}

impl Partition for HexPartition {
    fn len(&self) -> usize {
        self.k * self.k
    }

    fn subarea_of(&self, p: Point) -> usize {
        let (row, col) = self.cell_of(p);
        row * self.k + col
    }

    fn center(&self, i: usize) -> Point {
        let (row, col) = (i / self.k, i % self.k);
        let w = self.bounds.width() / self.k as f64;
        let h = self.bounds.height() / self.k as f64;
        let offset = if row % 2 == 1 { 0.5 * w } else { 0.0 };
        let cx = self.bounds.min().x + (offset + (col as f64 + 0.5) * w) % self.bounds.width();
        let cy = self.bounds.min().y + (row as f64 + 0.5) * h;
        Point::new(cx, cy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn square_partition_basic() {
        let part = SquarePartition::new(Bounds::square(400.0), 2);
        assert_eq!(part.len(), 4);
        assert_eq!(part.subarea_of(p(50.0, 50.0)), 0);
        assert_eq!(part.subarea_of(p(250.0, 50.0)), 1);
        assert_eq!(part.subarea_of(p(50.0, 250.0)), 2);
        assert_eq!(part.subarea_of(p(250.0, 250.0)), 3);
        assert_eq!(part.center(0), p(100.0, 100.0));
        assert_eq!(part.center(3), p(300.0, 300.0));
    }

    #[test]
    fn square_partition_boundary_and_outside() {
        let part = SquarePartition::new(Bounds::square(400.0), 2);
        // Field corner belongs to the last cell after clamping.
        assert_eq!(part.subarea_of(p(400.0, 400.0)), 3);
        // Points outside clamp to the nearest cell.
        assert_eq!(part.subarea_of(p(-5.0, -5.0)), 0);
        assert_eq!(part.subarea_of(p(500.0, 100.0)), 1);
    }

    #[test]
    fn square_subarea_bounds_tile_field() {
        let part = SquarePartition::new(Bounds::square(600.0), 3);
        let total: f64 = (0..9).map(|i| part.subarea_bounds(i).area()).sum();
        assert!((total - 600.0 * 600.0).abs() < 1e-6);
        // center(i) lies inside subarea i.
        for i in 0..9 {
            assert!(part.subarea_bounds(i).contains(part.center(i)));
            assert_eq!(part.subarea_of(part.center(i)), i);
        }
    }

    #[test]
    fn hex_partition_equal_membership_counts() {
        let part = HexPartition::new(Bounds::square(400.0), 4);
        assert_eq!(part.len(), 16);
        // Sample a fine grid: every cell should receive roughly the same
        // number of sample points (equal areas).
        let mut counts = [0usize; 16];
        let n = 200;
        for ix in 0..n {
            for iy in 0..n {
                let q = p(
                    (ix as f64 + 0.5) * 400.0 / n as f64,
                    (iy as f64 + 0.5) * 400.0 / n as f64,
                );
                counts[part.subarea_of(q)] += 1;
            }
        }
        let expected = (n * n / 16) as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() / expected < 0.05,
                "cell {i} has {c} samples, expected ~{expected}"
            );
        }
    }

    #[test]
    fn hex_centers_map_to_their_cell() {
        let part = HexPartition::new(Bounds::square(300.0), 3);
        for i in 0..part.len() {
            assert_eq!(part.subarea_of(part.center(i)), i, "center of cell {i}");
        }
    }

    #[test]
    fn every_point_gets_exactly_one_subarea() {
        let sq = SquarePartition::new(Bounds::square(200.0), 4);
        let hx = HexPartition::new(Bounds::square(200.0), 4);
        for ix in 0..50 {
            for iy in 0..50 {
                let q = p(ix as f64 * 4.0 + 0.3, iy as f64 * 4.0 + 0.7);
                assert!(sq.subarea_of(q) < sq.len());
                assert!(hx.subarea_of(q) < hx.len());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_k_rejected() {
        let _ = SquarePartition::new(Bounds::square(10.0), 0);
    }
}
