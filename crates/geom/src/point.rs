//! Points, vectors and axis-aligned bounds on the simulation plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A location on the 2-dimensional sensor field, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East-west coordinate in metres.
    pub x: f64,
    /// North-south coordinate in metres.
    pub y: f64,
}

/// A displacement between two [`Point`]s, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// East-west component in metres.
    pub x: f64,
    /// North-south component in metres.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ZERO: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates in metres.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`; cheaper than
    /// [`Point::distance`] for comparisons.
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The midpoint between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    ///
    /// Used to place a moving robot along its current leg of travel.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Returns `true` if both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    /// The zero displacement.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components in metres.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length in metres.
    pub fn length(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Squared length; cheaper than [`Vec2::length`] for comparisons.
    pub fn length_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with `other`.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z-component of the 3D cross product); positive
    /// when `other` lies counter-clockwise of `self`.
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The vector scaled to unit length, or `None` for (near-)zero
    /// vectors.
    pub fn normalized(self) -> Option<Vec2> {
        let len = self.length();
        if len <= f64::EPSILON {
            None
        } else {
            Some(Vec2::new(self.x / len, self.y / len))
        }
    }

    /// The vector rotated 90° counter-clockwise.
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// The angle of the vector in radians, in `(-π, π]`, measured
    /// counter-clockwise from the positive x-axis.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }
}

impl Sub for Point {
    type Output = Vec2;
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vec2> for Point {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.2}, {:.2}>", self.x, self.y)
    }
}

/// An axis-aligned rectangle: the deployment field or a subarea of it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    min: Point,
    max: Point,
}

impl Bounds {
    /// Creates a rectangle from opposite corners.
    ///
    /// # Panics
    ///
    /// Panics if `min` is not component-wise ≤ `max`, or if either corner
    /// is non-finite.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(min.is_finite() && max.is_finite(), "bounds must be finite");
        assert!(
            min.x <= max.x && min.y <= max.y,
            "bounds min {min} must be <= max {max}"
        );
        Bounds { min, max }
    }

    /// A square field of side `side` metres with its corner at the origin,
    /// the shape the paper deploys into (e.g. 800 × 800 m² for 16 robots).
    pub fn square(side: f64) -> Self {
        Bounds::new(Point::ZERO, Point::new(side, side))
    }

    /// Lower-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width in metres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in metres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square metres.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// The centre of the rectangle — where the centralized algorithm
    /// stations its manager (paper §3.1).
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` to the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// The four corners in counter-clockwise order starting at `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.midpoint(b), Point::new(1.5, 2.0));
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, -5.0));
    }

    #[test]
    fn vector_algebra() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
        assert_eq!(Vec2::new(1.0, 0.0).cross(Vec2::new(0.0, 1.0)), 1.0);
        assert_eq!(v.perp(), Vec2::new(-4.0, 3.0));
        assert_eq!(v * 2.0, Vec2::new(6.0, 8.0));
        assert_eq!(v / 2.0, Vec2::new(1.5, 2.0));
        assert_eq!(-v, Vec2::new(-3.0, -4.0));
        let u = v.normalized().unwrap();
        assert!((u.length() - 1.0).abs() < 1e-12);
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn angle_quadrants() {
        assert!((Vec2::new(1.0, 0.0).angle() - 0.0).abs() < 1e-12);
        assert!((Vec2::new(0.0, 1.0).angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((Vec2::new(-1.0, 0.0).angle() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn point_vector_interplay() {
        let p = Point::new(1.0, 2.0);
        let q = Point::new(4.0, 6.0);
        let v = q - p;
        assert_eq!(v, Vec2::new(3.0, 4.0));
        assert_eq!(p + v, q);
        assert_eq!(q - v, p);
    }

    #[test]
    fn bounds_queries() {
        let b = Bounds::square(200.0);
        assert_eq!(b.width(), 200.0);
        assert_eq!(b.height(), 200.0);
        assert_eq!(b.area(), 40_000.0);
        assert_eq!(b.center(), Point::new(100.0, 100.0));
        assert!(b.contains(Point::new(0.0, 0.0)), "boundary is inside");
        assert!(b.contains(Point::new(200.0, 200.0)));
        assert!(!b.contains(Point::new(-0.1, 50.0)));
        assert_eq!(b.clamp(Point::new(300.0, -5.0)), Point::new(200.0, 0.0));
    }

    #[test]
    fn corners_ccw() {
        let b = Bounds::new(Point::new(1.0, 2.0), Point::new(3.0, 5.0));
        let c = b.corners();
        // Shoelace area of the corner loop must be positive (CCW).
        let mut area = 0.0;
        for i in 0..4 {
            let p = c[i];
            let q = c[(i + 1) % 4];
            area += p.x * q.y - q.x * p.y;
        }
        assert!(area > 0.0);
        assert_eq!(area * 0.5, b.area());
    }

    #[test]
    #[should_panic(expected = "must be <= max")]
    fn inverted_bounds_rejected() {
        let _ = Bounds::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }
}
