//! A uniform-grid spatial index for fixed-radius neighbour queries.
//!
//! Building unit-disk connectivity for 800 sensors with pairwise tests is
//! O(n²); the grid makes deployment-time neighbour discovery and the
//! radio medium's "who hears this transmission" query O(1) expected per
//! node at the paper's densities.

use crate::point::{Bounds, Point};

/// A grid index over a fixed set of points.
///
/// Most indexed points never move (sensors are static; only robots
/// drive around), so bucket membership is split into two stores:
///
/// - `csr`: all points still at their build-time position, laid out
///   bucket-major in one flat array with `bucket_start` offsets. The
///   fixed-radius query — the radio medium's innermost loop — streams
///   this contiguously with zero per-bucket pointer chasing.
/// - `movers`: per-bucket vectors holding points that have crossed a
///   bucket boundary at least once.
///
/// Every bucket scan yields build-order residents first, then arrivals
/// in arrival order — exactly the order a naive per-bucket `Vec` with
/// remove-and-push-on-move maintenance would produce. Query order is
/// part of the simulator's determinism contract, so both stores keep
/// coordinates inline and never reorder surviving entries.
#[derive(Debug, Clone)]
pub struct GridIndex {
    bounds: Bounds,
    cell: f64,
    cols: usize,
    rows: usize,
    /// Static entries `(index, position)`, bucket-major.
    csr: Vec<(u32, Point)>,
    /// `bucket_start[b]..bucket_start[b + 1]` is bucket `b`'s slice of
    /// `csr`; length `cols * rows + 1`.
    bucket_start: Vec<u32>,
    /// Per-bucket entries that have moved across buckets, in arrival
    /// order. Empty for almost every bucket.
    movers: Vec<Vec<(u32, Point)>>,
    points: Vec<Point>,
}

impl GridIndex {
    /// Builds an index over `points` with buckets of side `cell` metres.
    ///
    /// `cell` should be close to the query radius (e.g. the radio range)
    /// so queries touch at most a 3×3 block of buckets.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not positive and finite, or if any point lies
    /// outside `bounds`.
    pub fn build(bounds: Bounds, cell: f64, points: &[Point]) -> Self {
        assert!(cell.is_finite() && cell > 0.0, "cell size must be positive");
        let cols = ((bounds.width() / cell).ceil() as usize).max(1);
        let rows = ((bounds.height() / cell).ceil() as usize).max(1);
        let mut index = GridIndex {
            bounds,
            cell,
            cols,
            rows,
            csr: Vec::with_capacity(points.len()),
            bucket_start: vec![0; cols * rows + 1],
            movers: vec![Vec::new(); cols * rows],
            points: points.to_vec(),
        };
        // Counting sort into the flat bucket-major layout: two passes,
        // stable in point index within each bucket.
        for &p in points {
            assert!(bounds.contains(p), "point {p} outside index bounds");
            let b = index.bucket_of(p);
            index.bucket_start[b + 1] += 1;
        }
        for b in 0..cols * rows {
            index.bucket_start[b + 1] += index.bucket_start[b];
        }
        let mut cursor: Vec<u32> = index.bucket_start[..cols * rows].to_vec();
        index.csr.resize(points.len(), (0, Point::new(0.0, 0.0)));
        for (i, &p) in points.iter().enumerate() {
            let b = index.bucket_of(p);
            index.csr[cursor[b] as usize] = (i as u32, p);
            cursor[b] += 1;
        }
        index
    }

    /// Moves point `i` to `new_pos`, updating its bucket. Used for robots,
    /// which change position during the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `new_pos` lies outside the bounds.
    pub fn update_position(&mut self, i: usize, new_pos: Point) {
        assert!(
            self.bounds.contains(new_pos),
            "point {new_pos} outside bounds"
        );
        let old_bucket = self.bucket_of(self.points[i]);
        let new_bucket = self.bucket_of(new_pos);
        self.points[i] = new_pos;
        let idx = i as u32;
        if old_bucket == new_bucket {
            // Same bucket: refresh the inline coordinates without
            // disturbing the entry's position (query order is part of
            // the simulator's determinism contract).
            if let Some(slot) = self.movers[old_bucket].iter_mut().find(|(x, _)| *x == idx) {
                slot.1 = new_pos;
            } else {
                let slot = self
                    .csr_range_mut(old_bucket)
                    .find(|(x, _)| *x == idx)
                    .expect("indexed point missing from its bucket");
                slot.1 = new_pos;
            }
            return;
        }
        if let Some(pos) = self.movers[old_bucket].iter().position(|&(x, _)| x == idx) {
            self.movers[old_bucket].remove(pos);
        } else {
            // First cross-bucket move: evict from the static layout.
            // One-time O(n) per point; only robots ever pay it.
            let start = self.bucket_start[old_bucket] as usize;
            let end = self.bucket_start[old_bucket + 1] as usize;
            let pos = self.csr[start..end]
                .iter()
                .position(|&(x, _)| x == idx)
                .expect("indexed point missing from its bucket");
            self.csr.remove(start + pos);
            for s in &mut self.bucket_start[old_bucket + 1..] {
                *s -= 1;
            }
        }
        self.movers[new_bucket].push((idx, new_pos));
    }

    /// Mutable view of bucket `b`'s static entries.
    fn csr_range_mut(&mut self, b: usize) -> std::slice::IterMut<'_, (u32, Point)> {
        let start = self.bucket_start[b] as usize;
        let end = self.bucket_start[b + 1] as usize;
        self.csr[start..end].iter_mut()
    }

    /// Current position of point `i`.
    pub fn position(&self, i: usize) -> Point {
        self.points[i]
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Calls `visit` with the index of every point within `radius` of
    /// `center` (excluding none — the caller filters out self-matches).
    pub fn for_each_within(&self, center: Point, radius: f64, mut visit: impl FnMut(usize)) {
        let r_sq = radius * radius;
        self.for_each_bucket_within(center, radius, |residents, movers| {
            for &(i, p) in residents {
                if p.distance_sq(center) <= r_sq {
                    visit(i as usize);
                }
            }
            for &(i, p) in movers {
                if p.distance_sq(center) <= r_sq {
                    visit(i as usize);
                }
            }
        });
    }

    /// Visits every bucket overlapping the disc at `center` with
    /// `radius`, in the exact order [`GridIndex::for_each_within`]
    /// scans them, passing each bucket's resident and mover entries as
    /// `(index, position)` slices (in scan order, *without* the
    /// distance filter). Callers that precompute per-bucket candidate
    /// sets use this to reproduce a query's visit order.
    pub fn for_each_bucket_within(
        &self,
        center: Point,
        radius: f64,
        mut bucket: impl FnMut(&[(u32, Point)], &[(u32, Point)]),
    ) {
        let min_cx = self.col_of(center.x - radius);
        let max_cx = self.col_of(center.x + radius);
        let min_cy = self.row_of(center.y - radius);
        let max_cy = self.row_of(center.y + radius);
        for cy in min_cy..=max_cy {
            let row = cy * self.cols;
            for cx in min_cx..=max_cx {
                let b = row + cx;
                let start = self.bucket_start[b] as usize;
                let end = self.bucket_start[b + 1] as usize;
                bucket(&self.csr[start..end], &self.movers[b]);
            }
        }
    }

    /// Returns `true` if `pred` holds for any bucket index in the scan
    /// window of the disc at `center` — the same window
    /// [`GridIndex::for_each_bucket_within`] visits. Lets callers keep
    /// per-bucket occupancy tallies and cheaply test a whole query
    /// window against them.
    pub fn any_bucket_within(
        &self,
        center: Point,
        radius: f64,
        mut pred: impl FnMut(usize) -> bool,
    ) -> bool {
        let min_cx = self.col_of(center.x - radius);
        let max_cx = self.col_of(center.x + radius);
        let min_cy = self.row_of(center.y - radius);
        let max_cy = self.row_of(center.y + radius);
        for cy in min_cy..=max_cy {
            let row = cy * self.cols;
            for cx in min_cx..=max_cx {
                if pred(row + cx) {
                    return true;
                }
            }
        }
        false
    }

    /// The linear bucket index holding `p` (for per-bucket tallies kept
    /// alongside the index; pairs with [`GridIndex::any_bucket_within`]).
    pub fn bucket_index(&self, p: Point) -> usize {
        self.bucket_of(p)
    }

    /// Total number of buckets (`bucket_index` values are below this).
    pub fn bucket_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Collects the indices of all points within `radius` of `center`.
    pub fn within(&self, center: Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |i| out.push(i));
        out
    }

    #[inline]
    fn col_of(&self, x: f64) -> usize {
        let c = ((x - self.bounds.min().x) / self.cell).floor();
        (c.max(0.0) as usize).min(self.cols - 1)
    }

    #[inline]
    fn row_of(&self, y: f64) -> usize {
        let r = ((y - self.bounds.min().y) / self.cell).floor();
        (r.max(0.0) as usize).min(self.rows - 1)
    }

    fn bucket_of(&self, p: Point) -> usize {
        self.row_of(p.y) * self.cols + self.col_of(p.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robonet_des::rng::{Rng, Xoshiro256};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn finds_points_in_radius() {
        let b = Bounds::square(100.0);
        let pts = vec![p(10.0, 10.0), p(15.0, 10.0), p(50.0, 50.0), p(10.0, 16.0)];
        let idx = GridIndex::build(b, 10.0, &pts);
        let mut hits = idx.within(p(10.0, 10.0), 6.0);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1, 3]);
    }

    #[test]
    fn radius_boundary_inclusive() {
        let b = Bounds::square(100.0);
        let pts = vec![p(0.0, 0.0), p(10.0, 0.0)];
        let idx = GridIndex::build(b, 5.0, &pts);
        assert_eq!(
            idx.within(p(0.0, 0.0), 10.0).len(),
            2,
            "exact radius included"
        );
        assert_eq!(idx.within(p(0.0, 0.0), 9.999).len(), 1);
    }

    #[test]
    fn matches_brute_force() {
        let b = Bounds::square(200.0);
        let mut rng = Xoshiro256::seed_from_u64(99);
        let pts: Vec<Point> = (0..300)
            .map(|_| p(rng.gen_range(0.0..=200.0), rng.gen_range(0.0..=200.0)))
            .collect();
        let idx = GridIndex::build(b, 63.0, &pts);
        for probe in 0..20 {
            let c = pts[probe * 7];
            let r = 63.0;
            let mut fast = idx.within(c, r);
            fast.sort_unstable();
            let slow: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, q)| q.distance_sq(c) <= r * r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn update_position_moves_buckets() {
        let b = Bounds::square(100.0);
        let pts = vec![p(5.0, 5.0), p(95.0, 95.0)];
        let mut idx = GridIndex::build(b, 10.0, &pts);
        assert!(idx.within(p(90.0, 90.0), 10.0).contains(&1));
        idx.update_position(1, p(5.0, 6.0));
        assert!(idx.within(p(90.0, 90.0), 10.0).is_empty());
        let mut near_origin = idx.within(p(5.0, 5.0), 3.0);
        near_origin.sort_unstable();
        assert_eq!(near_origin, vec![0, 1]);
        assert_eq!(idx.position(1), p(5.0, 6.0));
    }

    #[test]
    fn edge_of_bounds_queries_clamp() {
        let b = Bounds::square(100.0);
        let pts = vec![p(0.0, 0.0), p(100.0, 100.0)];
        let idx = GridIndex::build(b, 30.0, &pts);
        // Query centre outside the bounds must not panic and still finds
        // nearby in-bounds points.
        assert_eq!(idx.within(p(-5.0, -5.0), 20.0), vec![0]);
        assert_eq!(idx.within(p(105.0, 105.0), 20.0), vec![1]);
    }

    #[test]
    #[should_panic(expected = "outside index bounds")]
    fn out_of_bounds_point_rejected() {
        let _ = GridIndex::build(Bounds::square(10.0), 1.0, &[p(20.0, 0.0)]);
    }

    #[test]
    fn len_and_empty() {
        let idx = GridIndex::build(Bounds::square(10.0), 1.0, &[]);
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn radius_zero_matches_exact_positions_only() {
        let b = Bounds::square(100.0);
        let pts = vec![p(10.0, 10.0), p(10.0, 10.0), p(10.0, 10.000001)];
        let idx = GridIndex::build(b, 10.0, &pts);
        let mut hits = idx.within(p(10.0, 10.0), 0.0);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1], "coincident points only");
        assert!(idx.within(p(55.5, 55.5), 0.0).is_empty());
    }

    #[test]
    fn points_on_cell_boundaries_are_found() {
        // Points exactly on bucket edges and corners must land in
        // exactly one bucket and still be returned by queries from
        // either side of the boundary.
        let b = Bounds::square(100.0);
        let pts = vec![
            p(0.0, 0.0),     // grid origin corner
            p(10.0, 0.0),    // column boundary
            p(0.0, 10.0),    // row boundary
            p(10.0, 10.0),   // interior corner
            p(100.0, 100.0), // far corner = outer bounds edge
        ];
        let idx = GridIndex::build(b, 10.0, &pts);
        for (i, &q) in pts.iter().enumerate() {
            assert!(
                idx.within(q, 0.0).contains(&i),
                "boundary point {i} found at its own position"
            );
            assert!(
                idx.within(p(q.x - 0.5, q.y - 0.5), 1.0).contains(&i),
                "boundary point {i} visible from the neighbouring cell"
            );
        }
    }

    #[test]
    fn single_cell_grid_degenerates_to_linear_scan() {
        // A cell larger than the bounds puts every point in one bucket;
        // queries must still be exact.
        let b = Bounds::square(50.0);
        let pts = vec![p(1.0, 1.0), p(25.0, 25.0), p(49.0, 49.0)];
        let idx = GridIndex::build(b, 1000.0, &pts);
        let mut all = idx.within(p(25.0, 25.0), 100.0);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
        assert_eq!(idx.within(p(25.0, 25.0), 1.0), vec![1]);
    }

    #[test]
    fn update_position_within_one_bucket_refreshes_coords() {
        // Moves that stay inside a bucket must refresh the inline
        // coordinates used for distance tests (not just `points`).
        let b = Bounds::square(100.0);
        let pts = vec![p(12.0, 12.0)];
        let mut idx = GridIndex::build(b, 10.0, &pts);
        idx.update_position(0, p(18.0, 18.0));
        assert_eq!(idx.position(0), p(18.0, 18.0));
        assert!(idx.within(p(12.0, 12.0), 1.0).is_empty());
        assert_eq!(idx.within(p(18.0, 18.0), 1.0), vec![0]);
    }

    #[test]
    fn scan_order_is_residents_then_arrivals() {
        // Query order feeds the simulator's RNG and event ordering, so
        // it is a contract: build-order residents first, then arrivals
        // in arrival order; same-bucket moves keep an entry's slot.
        let b = Bounds::square(100.0);
        let pts = vec![p(1.0, 1.0), p(2.0, 2.0), p(50.0, 50.0), p(15.0, 1.0)];
        let mut idx = GridIndex::build(b, 10.0, &pts);
        assert_eq!(idx.within(p(2.0, 2.0), 8.0), vec![0, 1]);
        // Point 3 crosses into the first bucket: appended after residents.
        idx.update_position(3, p(3.0, 3.0));
        assert_eq!(idx.within(p(2.0, 2.0), 8.0), vec![0, 1, 3]);
        // Point 0 leaves and returns: it re-enters as the newest arrival.
        idx.update_position(0, p(25.0, 25.0));
        idx.update_position(0, p(1.0, 1.0));
        assert_eq!(idx.within(p(2.0, 2.0), 8.0), vec![1, 3, 0]);
        // A same-bucket move does not surrender the slot.
        idx.update_position(3, p(4.0, 4.0));
        assert_eq!(idx.within(p(2.0, 2.0), 8.0), vec![1, 3, 0]);
    }

    #[test]
    fn prop_grid_query_matches_brute_force() {
        use robonet_des::check::{self, Outcome};
        // Coordinates quantized to 5 m so many points land exactly on
        // cell boundaries for the cell sizes drawn below.
        let coord = check::u32s(0..41).map(|&v| f64::from(v) * 5.0);
        let pts = check::vec_of(
            check::pair(coord.clone(), coord.clone()).map(|&(x, y)| Point::new(x, y)),
            0..40,
        );
        let cfg = check::quad(
            pts,
            check::pair(coord.clone(), coord).map(|&(x, y)| Point::new(x, y)),
            check::f64s(0.0..80.0),
            check::u32s(1..5),
        );
        check::forall_cases(
            "grid_query_matches_brute_force",
            64,
            &cfg,
            |(pts, center, radius, cell_steps)| {
                let b = Bounds::square(200.0);
                let cell = f64::from(*cell_steps) * 5.0;
                let idx = GridIndex::build(b, cell, pts);
                let mut fast = idx.within(*center, *radius);
                fast.sort_unstable();
                let slow: Vec<usize> = pts
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| q.distance_sq(*center) <= radius * radius)
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(fast, slow, "cell={cell} r={radius} c={center}");
                Outcome::Pass
            },
        );
    }
}
