//! A uniform-grid spatial index for fixed-radius neighbour queries.
//!
//! Building unit-disk connectivity for 800 sensors with pairwise tests is
//! O(n²); the grid makes deployment-time neighbour discovery and the
//! radio medium's "who hears this transmission" query O(1) expected per
//! node at the paper's densities.

use crate::point::{Bounds, Point};

/// A grid index over a fixed set of points.
#[derive(Debug, Clone)]
pub struct GridIndex {
    bounds: Bounds,
    cell: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<u32>>,
    points: Vec<Point>,
}

impl GridIndex {
    /// Builds an index over `points` with buckets of side `cell` metres.
    ///
    /// `cell` should be close to the query radius (e.g. the radio range)
    /// so queries touch at most a 3×3 block of buckets.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not positive and finite, or if any point lies
    /// outside `bounds`.
    pub fn build(bounds: Bounds, cell: f64, points: &[Point]) -> Self {
        assert!(cell.is_finite() && cell > 0.0, "cell size must be positive");
        let cols = ((bounds.width() / cell).ceil() as usize).max(1);
        let rows = ((bounds.height() / cell).ceil() as usize).max(1);
        let mut index = GridIndex {
            bounds,
            cell,
            cols,
            rows,
            buckets: vec![Vec::new(); cols * rows],
            points: points.to_vec(),
        };
        for (i, &p) in points.iter().enumerate() {
            assert!(bounds.contains(p), "point {p} outside index bounds");
            let b = index.bucket_of(p);
            index.buckets[b].push(i as u32);
        }
        index
    }

    /// Moves point `i` to `new_pos`, updating its bucket. Used for robots,
    /// which change position during the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `new_pos` lies outside the bounds.
    pub fn update_position(&mut self, i: usize, new_pos: Point) {
        assert!(
            self.bounds.contains(new_pos),
            "point {new_pos} outside bounds"
        );
        let old_bucket = self.bucket_of(self.points[i]);
        let new_bucket = self.bucket_of(new_pos);
        self.points[i] = new_pos;
        if old_bucket != new_bucket {
            let idx = i as u32;
            self.buckets[old_bucket].retain(|&x| x != idx);
            self.buckets[new_bucket].push(idx);
        }
    }

    /// Current position of point `i`.
    pub fn position(&self, i: usize) -> Point {
        self.points[i]
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Calls `visit` with the index of every point within `radius` of
    /// `center` (excluding none — the caller filters out self-matches).
    pub fn for_each_within(&self, center: Point, radius: f64, mut visit: impl FnMut(usize)) {
        let r_sq = radius * radius;
        let min_cx = self.col_of(center.x - radius);
        let max_cx = self.col_of(center.x + radius);
        let min_cy = self.row_of(center.y - radius);
        let max_cy = self.row_of(center.y + radius);
        for cy in min_cy..=max_cy {
            for cx in min_cx..=max_cx {
                for &i in &self.buckets[cy * self.cols + cx] {
                    if self.points[i as usize].distance_sq(center) <= r_sq {
                        visit(i as usize);
                    }
                }
            }
        }
    }

    /// Collects the indices of all points within `radius` of `center`.
    pub fn within(&self, center: Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |i| out.push(i));
        out
    }

    fn col_of(&self, x: f64) -> usize {
        let c = ((x - self.bounds.min().x) / self.cell).floor();
        (c.max(0.0) as usize).min(self.cols - 1)
    }

    fn row_of(&self, y: f64) -> usize {
        let r = ((y - self.bounds.min().y) / self.cell).floor();
        (r.max(0.0) as usize).min(self.rows - 1)
    }

    fn bucket_of(&self, p: Point) -> usize {
        self.row_of(p.y) * self.cols + self.col_of(p.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robonet_des::rng::{Rng, Xoshiro256};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn finds_points_in_radius() {
        let b = Bounds::square(100.0);
        let pts = vec![p(10.0, 10.0), p(15.0, 10.0), p(50.0, 50.0), p(10.0, 16.0)];
        let idx = GridIndex::build(b, 10.0, &pts);
        let mut hits = idx.within(p(10.0, 10.0), 6.0);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1, 3]);
    }

    #[test]
    fn radius_boundary_inclusive() {
        let b = Bounds::square(100.0);
        let pts = vec![p(0.0, 0.0), p(10.0, 0.0)];
        let idx = GridIndex::build(b, 5.0, &pts);
        assert_eq!(
            idx.within(p(0.0, 0.0), 10.0).len(),
            2,
            "exact radius included"
        );
        assert_eq!(idx.within(p(0.0, 0.0), 9.999).len(), 1);
    }

    #[test]
    fn matches_brute_force() {
        let b = Bounds::square(200.0);
        let mut rng = Xoshiro256::seed_from_u64(99);
        let pts: Vec<Point> = (0..300)
            .map(|_| p(rng.gen_range(0.0..=200.0), rng.gen_range(0.0..=200.0)))
            .collect();
        let idx = GridIndex::build(b, 63.0, &pts);
        for probe in 0..20 {
            let c = pts[probe * 7];
            let r = 63.0;
            let mut fast = idx.within(c, r);
            fast.sort_unstable();
            let slow: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, q)| q.distance_sq(c) <= r * r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn update_position_moves_buckets() {
        let b = Bounds::square(100.0);
        let pts = vec![p(5.0, 5.0), p(95.0, 95.0)];
        let mut idx = GridIndex::build(b, 10.0, &pts);
        assert!(idx.within(p(90.0, 90.0), 10.0).contains(&1));
        idx.update_position(1, p(5.0, 6.0));
        assert!(idx.within(p(90.0, 90.0), 10.0).is_empty());
        let mut near_origin = idx.within(p(5.0, 5.0), 3.0);
        near_origin.sort_unstable();
        assert_eq!(near_origin, vec![0, 1]);
        assert_eq!(idx.position(1), p(5.0, 6.0));
    }

    #[test]
    fn edge_of_bounds_queries_clamp() {
        let b = Bounds::square(100.0);
        let pts = vec![p(0.0, 0.0), p(100.0, 100.0)];
        let idx = GridIndex::build(b, 30.0, &pts);
        // Query centre outside the bounds must not panic and still finds
        // nearby in-bounds points.
        assert_eq!(idx.within(p(-5.0, -5.0), 20.0), vec![0]);
        assert_eq!(idx.within(p(105.0, 105.0), 20.0), vec![1]);
    }

    #[test]
    #[should_panic(expected = "outside index bounds")]
    fn out_of_bounds_point_rejected() {
        let _ = GridIndex::build(Bounds::square(10.0), 1.0, &[p(20.0, 0.0)]);
    }

    #[test]
    fn len_and_empty() {
        let idx = GridIndex::build(Bounds::square(10.0), 1.0, &[]);
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
    }
}
