//! Planar subgraphs for face-routing recovery.
//!
//! Greedy geographic forwarding can reach a node with no neighbour closer
//! to the destination (a routing "hole"). GPSR \[7\] and GFG \[2\] — the
//! recovery schemes the paper builds on — route around the hole on a
//! *planar* subgraph of the connectivity graph. Both the Gabriel graph
//! (GG) and the relative neighborhood graph (RNG) are planar, connected
//! whenever the original unit-disk graph is connected, and computable
//! from purely local information — which is why GPSR uses them.

use crate::graph::UnitDiskGraph;
use crate::point::Point;

/// Returns `true` if the edge `(u, v)` survives the Gabriel-graph test
/// given `witness`: the edge is *removed* when some witness lies strictly
/// inside the disk with diameter `uv`.
///
/// Purely local: a node only needs its own position and its neighbours'.
pub fn gabriel_edge_survives(u: Point, v: Point, witness: Point) -> bool {
    let m = u.midpoint(v);
    let r_sq = u.distance_sq(v) * 0.25;
    witness.distance_sq(m) >= r_sq - 1e-12
}

/// Returns `true` if the edge `(u, v)` survives the relative-neighborhood
/// graph test given `witness`: the edge is *removed* when the witness is
/// closer to both endpoints than they are to each other (inside the lune).
pub fn rng_edge_survives(u: Point, v: Point, witness: Point) -> bool {
    let d_sq = u.distance_sq(v);
    !(witness.distance_sq(u) < d_sq - 1e-12 && witness.distance_sq(v) < d_sq - 1e-12)
}

/// Filters the neighbours of one node down to its Gabriel-graph
/// neighbours, exactly as a GPSR node planarizes its own neighbour table:
/// edge `(self, n)` is kept iff no *other* neighbour lies inside the
/// diametral disk.
///
/// `neighbors` yields `(id, position)` pairs; the returned vector
/// preserves input order.
pub fn gabriel_filter<I>(self_pos: Point, neighbors: &[(I, Point)]) -> Vec<(I, Point)>
where
    I: Copy + PartialEq,
{
    let mut out = Vec::new();
    gabriel_filter_into(self_pos, neighbors, &mut out);
    out
}

/// Like [`gabriel_filter`], but writes the surviving neighbours into
/// `out` (cleared first) so a caller on a hot path can reuse one buffer
/// across filter invocations.
pub fn gabriel_filter_into<I>(self_pos: Point, neighbors: &[(I, Point)], out: &mut Vec<(I, Point)>)
where
    I: Copy + PartialEq,
{
    out.clear();
    out.extend(
        neighbors
            .iter()
            .filter(|&&(id, pos)| {
                neighbors
                    .iter()
                    .filter(|&&(other_id, _)| other_id != id)
                    .all(|&(_, w)| gabriel_edge_survives(self_pos, pos, w))
            })
            .copied(),
    );
}

/// A planar subgraph of a [`UnitDiskGraph`], stored as filtered adjacency.
#[derive(Debug, Clone)]
pub struct PlanarGraph {
    adjacency: Vec<Vec<u32>>,
}

/// Which planarization rule to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanarRule {
    /// Gabriel graph: denser, shorter detours (GPSR's default).
    Gabriel,
    /// Relative neighborhood graph: sparser subset of the Gabriel graph.
    Rng,
}

impl PlanarGraph {
    /// Planarizes `graph` with the given rule.
    ///
    /// Witnesses are restricted to common neighbours, matching what a
    /// distributed implementation can see; for unit-disk graphs this still
    /// yields a planar connected subgraph (Bose et al. 1999).
    pub fn build(graph: &UnitDiskGraph, rule: PlanarRule) -> Self {
        let n = graph.len();
        let mut adjacency = vec![Vec::new(); n];
        #[allow(clippy::needless_range_loop)]
        for u in 0..n {
            let pu = graph.position(u);
            'edges: for &v in graph.neighbors(u) {
                let v = v as usize;
                let pv = graph.position(v);
                for &w in graph.neighbors(u) {
                    let w = w as usize;
                    if w == v {
                        continue;
                    }
                    // Witness must be a common neighbour to matter.
                    if !graph.has_edge(w, v) {
                        continue;
                    }
                    let pw = graph.position(w);
                    let survives = match rule {
                        PlanarRule::Gabriel => gabriel_edge_survives(pu, pv, pw),
                        PlanarRule::Rng => rng_edge_survives(pu, pv, pw),
                    };
                    if !survives {
                        continue 'edges;
                    }
                }
                adjacency[u].push(v as u32);
            }
            adjacency[u].sort_unstable();
        }
        PlanarGraph { adjacency }
    }

    /// Neighbours of node `i` in the planar subgraph, sorted by index.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.adjacency[i]
    }

    /// Returns `true` if `i` and `j` are connected in the subgraph.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.adjacency[i].binary_search(&(j as u32)).is_ok()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Returns `true` if every node can reach every other node within the
    /// subgraph.
    pub fn is_connected(&self) -> bool {
        if self.adjacency.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adjacency.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            for &j in &self.adjacency[i] {
                let j = j as usize;
                if !seen[j] {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == self.adjacency.len()
    }

    /// Checks planarity by brute force: no two non-adjacent edges cross.
    /// O(E²) — for tests only.
    pub fn crossings(&self, positions: &[Point]) -> usize {
        use crate::segment::Segment;
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (u, nbrs) in self.adjacency.iter().enumerate() {
            for &v in nbrs {
                let v = v as usize;
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        let mut crossings = 0;
        for (a, &(u1, v1)) in edges.iter().enumerate() {
            for &(u2, v2) in &edges[a + 1..] {
                if u1 == u2 || u1 == v2 || v1 == u2 || v1 == v2 {
                    continue; // shared endpoint is not a crossing
                }
                let s1 = Segment::new(positions[u1], positions[v1]);
                let s2 = Segment::new(positions[u2], positions[v2]);
                if s1.intersects(&s2) {
                    crossings += 1;
                }
            }
        }
        crossings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Bounds;
    use robonet_des::rng::{Rng, Xoshiro256};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn gabriel_edge_tests() {
        let u = p(0.0, 0.0);
        let v = p(10.0, 0.0);
        assert!(
            !gabriel_edge_survives(u, v, p(5.0, 1.0)),
            "witness in disk kills"
        );
        assert!(
            gabriel_edge_survives(u, v, p(5.0, 5.0)),
            "on circle survives"
        );
        assert!(
            gabriel_edge_survives(u, v, p(0.0, 10.0)),
            "outside survives"
        );
    }

    #[test]
    fn rng_edge_tests() {
        let u = p(0.0, 0.0);
        let v = p(10.0, 0.0);
        assert!(
            !rng_edge_survives(u, v, p(5.0, 2.0)),
            "witness in lune kills"
        );
        assert!(
            rng_edge_survives(u, v, p(5.0, 9.5)),
            "outside lune survives"
        );
        // In the lune but outside the Gabriel disk: the RNG test removes
        // strictly more edges per witness than the Gabriel test, which is
        // why RNG ⊆ GG as edge sets.
        let w = p(5.0, 6.0);
        assert!(gabriel_edge_survives(u, v, w), "outside disk: GG keeps");
        assert!(!rng_edge_survives(u, v, w), "inside lune: RNG removes");
    }

    fn random_udg(seed: u64, n: usize, side: f64, radius: f64) -> UnitDiskGraph {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| p(rng.gen_range(0.0..=side), rng.gen_range(0.0..=side)))
            .collect();
        UnitDiskGraph::build(Bounds::square(side), radius, &pts)
    }

    #[test]
    fn gabriel_is_planar_and_connected() {
        for seed in 0..5 {
            let g = random_udg(seed, 120, 200.0, 40.0);
            if !g.is_connected() {
                continue;
            }
            let gg = PlanarGraph::build(&g, PlanarRule::Gabriel);
            assert!(gg.is_connected(), "seed {seed}: GG disconnected");
            assert_eq!(
                gg.crossings(g.positions()),
                0,
                "seed {seed}: GG has crossings"
            );
            assert!(gg.edge_count() <= g.edge_count());
        }
    }

    #[test]
    fn rng_subset_of_gabriel() {
        let g = random_udg(7, 100, 200.0, 45.0);
        let gg = PlanarGraph::build(&g, PlanarRule::Gabriel);
        let rn = PlanarGraph::build(&g, PlanarRule::Rng);
        for u in 0..g.len() {
            for &v in rn.neighbors(u) {
                assert!(
                    gg.has_edge(u, v as usize),
                    "RNG edge {u}-{v} missing from Gabriel graph"
                );
            }
        }
        assert!(rn.edge_count() <= gg.edge_count());
    }

    #[test]
    fn planar_adjacency_symmetric() {
        let g = random_udg(11, 80, 150.0, 40.0);
        let gg = PlanarGraph::build(&g, PlanarRule::Gabriel);
        for u in 0..gg.len() {
            for &v in gg.neighbors(u) {
                assert!(gg.has_edge(v as usize, u), "GG edge {u}-{v} asymmetric");
            }
        }
    }

    #[test]
    fn local_gabriel_filter_matches_global() {
        let g = random_udg(3, 60, 120.0, 40.0);
        let gg = PlanarGraph::build(&g, PlanarRule::Gabriel);
        for u in 0..g.len() {
            let nbrs: Vec<(u32, Point)> = g
                .neighbors(u)
                .iter()
                .map(|&v| (v, g.position(v as usize)))
                .collect();
            let filtered = gabriel_filter(g.position(u), &nbrs);
            // The local filter uses *all* neighbours as witnesses, the
            // global build only common neighbours; the local result must
            // therefore be a subset.
            for (v, _) in &filtered {
                let _ = v;
            }
            let local: std::collections::HashSet<u32> =
                filtered.into_iter().map(|(v, _)| v).collect();
            for &v in gg.neighbors(u) {
                // A witness that kills an edge locally is within range of
                // u, and if it is also within range of v it is a common
                // neighbour; so global-kept ⊇ local-kept.
                let _ = v;
            }
            for v in &local {
                assert!(
                    gg.has_edge(u, *v as usize),
                    "locally kept edge {u}-{v} absent globally"
                );
            }
        }
    }

    #[test]
    fn triangle_keeps_all_edges() {
        let pts = vec![p(0.0, 0.0), p(10.0, 0.0), p(5.0, 8.0)];
        let g = UnitDiskGraph::build(Bounds::square(20.0), 15.0, &pts);
        let gg = PlanarGraph::build(&g, PlanarRule::Gabriel);
        assert_eq!(
            gg.edge_count(),
            3,
            "no vertex of a fat triangle is inside an edge-disk"
        );
    }

    #[test]
    fn square_with_diagonals_loses_a_diagonal() {
        // Slightly irregular square: a perfect square is co-circular, a
        // measure-zero degeneracy where the open-disk Gabriel test keeps
        // both (crossing) diagonals. Random deployments never hit it.
        let pts = vec![p(0.0, 0.0), p(10.0, 0.0), p(10.5, 10.0), p(0.0, 10.2)];
        let g = UnitDiskGraph::build(Bounds::square(20.0), 15.0, &pts);
        assert_eq!(g.edge_count(), 6, "complete graph on the square");
        let gg = PlanarGraph::build(&g, PlanarRule::Gabriel);
        assert_eq!(gg.crossings(g.positions()), 0);
        assert!(gg.edge_count() < 6, "at least one diagonal removed");
        assert!(gg.is_connected());
    }
}
