//! Convex hull (Andrew's monotone chain).

use crate::point::Point;
use crate::segment::{orientation, Orientation};

/// Computes the convex hull of `points` in counter-clockwise order.
///
/// Collinear points on hull edges are dropped. Inputs with fewer than
/// three distinct points return what exists (0, 1 or 2 points).
///
/// ```
/// use robonet_geom::{hull::convex_hull, Point};
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
///     Point::new(1.0, 1.0),
///     Point::new(2.0, 2.0),
///     Point::new(0.0, 2.0),
/// ];
/// let h = convex_hull(&pts);
/// assert_eq!(h.len(), 4); // interior point dropped
/// ```
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .expect("non-finite coordinate")
            .then(a.y.partial_cmp(&b.y).expect("non-finite coordinate"))
    });
    pts.dedup_by(|a, b| a.distance_sq(*b) < 1e-18);
    let n = pts.len();
    if n <= 2 {
        return pts;
    }

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2
            && orientation(hull[hull.len() - 2], hull[hull.len() - 1], p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orientation(hull[hull.len() - 2], hull[hull.len() - 1], p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point repeats the first
    hull
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn square_hull() {
        let pts = vec![
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0),
            p(0.0, 1.0),
            p(0.5, 0.5),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        // CCW: signed area positive.
        let area: f64 = h
            .iter()
            .zip(h.iter().cycle().skip(1))
            .take(h.len())
            .map(|(a, b)| a.x * b.y - b.x * a.y)
            .sum();
        assert!(area > 0.0);
    }

    #[test]
    fn collinear_points_collapse() {
        let pts = vec![p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 2, "a line of points has a 2-point hull");
    }

    #[test]
    fn duplicates_deduped() {
        let pts = vec![p(0.0, 0.0), p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)];
        assert_eq!(convex_hull(&pts).len(), 3);
    }

    #[test]
    fn small_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[p(1.0, 2.0)]).len(), 1);
        assert_eq!(convex_hull(&[p(1.0, 2.0), p(3.0, 4.0)]).len(), 2);
    }

    #[test]
    fn hull_contains_all_points() {
        // Every input point must be inside or on the hull.
        use crate::polygon::ConvexPolygon;
        let pts: Vec<Point> = (0..50)
            .map(|i| {
                let a = i as f64 * 0.7;
                p(a.sin() * (i % 7) as f64, a.cos() * (i % 5) as f64)
            })
            .collect();
        let h = convex_hull(&pts);
        let poly = ConvexPolygon::new(h).unwrap();
        for &q in &pts {
            assert!(poly.contains(q), "{q} escapes its own hull");
        }
    }
}
