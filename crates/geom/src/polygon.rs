//! Convex polygons with half-plane clipping — the building block of the
//! bounded Voronoi diagram (paper Fig. 1).

use crate::point::{Bounds, Point};
use crate::segment::{orientation, Orientation, EPS};

/// A convex polygon with vertices in counter-clockwise order.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

impl ConvexPolygon {
    /// Creates a polygon from counter-clockwise vertices.
    ///
    /// Returns `None` if fewer than three vertices are supplied or the
    /// signed area is not positive (clockwise or degenerate input).
    pub fn new(vertices: Vec<Point>) -> Option<Self> {
        if vertices.len() < 3 {
            return None;
        }
        let poly = ConvexPolygon { vertices };
        if poly.area() <= EPS {
            return None;
        }
        Some(poly)
    }

    /// The full rectangle as a polygon — the starting cell before Voronoi
    /// clipping.
    pub fn from_bounds(bounds: &Bounds) -> Self {
        ConvexPolygon {
            vertices: bounds.corners().to_vec(),
        }
    }

    /// The vertices in counter-clockwise order.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Signed area via the shoelace formula (positive for CCW).
    pub fn area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            acc += p.x * q.y - q.x * p.y;
        }
        acc * 0.5
    }

    /// The centroid (area-weighted barycentre).
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
            a += w;
        }
        if a.abs() <= EPS {
            // Degenerate: fall back to the vertex average.
            let inv = 1.0 / n as f64;
            return Point::new(
                self.vertices.iter().map(|v| v.x).sum::<f64>() * inv,
                self.vertices.iter().map(|v| v.y).sum::<f64>() * inv,
            );
        }
        Point::new(cx / (3.0 * a), cy / (3.0 * a))
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if orientation(a, b, p) == Orientation::Clockwise {
                return false;
            }
        }
        true
    }

    /// Clips the polygon to the half-plane of points at least as close to
    /// `site` as to `other` (the perpendicular-bisector half-plane that
    /// defines Voronoi cells).
    ///
    /// Returns `None` if the intersection is empty or degenerate.
    pub fn clip_to_bisector(&self, site: Point, other: Point) -> Option<ConvexPolygon> {
        // Keep p where dist(p, site) <= dist(p, other), i.e.
        // 2 (other - site) · p <= |other|² - |site|².
        let d = other - site;
        let c = 0.5 * (other.x * other.x + other.y * other.y - site.x * site.x - site.y * site.y);
        self.clip_halfplane(d.x, d.y, c)
    }

    /// Clips to the half-plane `a·x + b·y <= c` (Sutherland–Hodgman step).
    ///
    /// Returns `None` if the intersection is empty or degenerate.
    pub fn clip_halfplane(&self, a: f64, b: f64, c: f64) -> Option<ConvexPolygon> {
        let inside = |p: Point| a * p.x + b * p.y <= c + EPS;
        let n = self.vertices.len();
        let mut out: Vec<Point> = Vec::with_capacity(n + 1);
        for i in 0..n {
            let cur = self.vertices[i];
            let nxt = self.vertices[(i + 1) % n];
            let cur_in = inside(cur);
            let nxt_in = inside(nxt);
            if cur_in {
                out.push(cur);
            }
            if cur_in != nxt_in {
                // Edge crosses the boundary a·x + b·y = c.
                let denom = a * (nxt.x - cur.x) + b * (nxt.y - cur.y);
                if denom.abs() > EPS {
                    let t = (c - a * cur.x - b * cur.y) / denom;
                    out.push(cur.lerp(nxt, t.clamp(0.0, 1.0)));
                }
            }
        }
        ConvexPolygon::new(out)
    }

    /// The intersection of two convex polygons: `self` clipped by each
    /// edge half-plane of `other` in turn (Sutherland–Hodgman).
    ///
    /// Returns `None` when the polygons are disjoint or touch only
    /// along an edge or vertex (zero-area intersection).
    pub fn intersection(&self, other: &ConvexPolygon) -> Option<ConvexPolygon> {
        let n = other.vertices.len();
        let mut clipped = self.clone();
        for i in 0..n {
            let a = other.vertices[i];
            let b = other.vertices[(i + 1) % n];
            // The CCW edge a→b keeps the half-plane on its left:
            // (b.y - a.y)·x - (b.x - a.x)·y <= (b.y - a.y)·a.x - (b.x - a.x)·a.y.
            let (dx, dy) = (b.x - a.x, b.y - a.y);
            clipped = clipped.clip_halfplane(dy, -dx, dy * a.x - dx * a.y)?;
        }
        Some(clipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> ConvexPolygon {
        ConvexPolygon::from_bounds(&Bounds::square(1.0))
    }

    #[test]
    fn area_and_centroid() {
        let sq = unit_square();
        assert!((sq.area() - 1.0).abs() < 1e-12);
        let c = sq.centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn containment() {
        let sq = unit_square();
        assert!(sq.contains(Point::new(0.5, 0.5)));
        assert!(
            sq.contains(Point::new(0.0, 0.0)),
            "vertices count as inside"
        );
        assert!(sq.contains(Point::new(0.5, 0.0)), "edges count as inside");
        assert!(!sq.contains(Point::new(1.5, 0.5)));
        assert!(!sq.contains(Point::new(0.5, -0.1)));
    }

    #[test]
    fn rejects_degenerate() {
        assert!(ConvexPolygon::new(vec![Point::ZERO, Point::new(1.0, 0.0)]).is_none());
        // Clockwise square has negative signed area.
        let cw = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ];
        assert!(ConvexPolygon::new(cw).is_none());
        // Collinear.
        let line = vec![Point::ZERO, Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        assert!(ConvexPolygon::new(line).is_none());
    }

    #[test]
    fn halfplane_clip_cuts_square_in_half() {
        let sq = unit_square();
        // Keep x <= 0.5.
        let half = sq.clip_halfplane(1.0, 0.0, 0.5).unwrap();
        assert!((half.area() - 0.5).abs() < 1e-9);
        assert!(half.contains(Point::new(0.25, 0.5)));
        assert!(!half.contains(Point::new(0.75, 0.5)));
    }

    #[test]
    fn halfplane_clip_empty_when_outside() {
        let sq = unit_square();
        assert!(
            sq.clip_halfplane(1.0, 0.0, -1.0).is_none(),
            "keep x <= -1: empty"
        );
    }

    #[test]
    fn halfplane_clip_noop_when_covering() {
        let sq = unit_square();
        let full = sq.clip_halfplane(1.0, 0.0, 10.0).unwrap();
        assert!((full.area() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bisector_clip_splits_between_sites() {
        let sq = unit_square();
        let left = Point::new(0.25, 0.5);
        let right = Point::new(0.75, 0.5);
        let cell = sq.clip_to_bisector(left, right).unwrap();
        assert!((cell.area() - 0.5).abs() < 1e-9);
        assert!(cell.contains(Point::new(0.1, 0.5)));
        assert!(!cell.contains(Point::new(0.9, 0.5)));
        // Every interior point of the cell is closer to `left`.
        for &v in cell.vertices() {
            let inner = v.lerp(cell.centroid(), 0.01);
            assert!(inner.distance(left) <= inner.distance(right) + 1e-6);
        }
    }

    #[test]
    fn intersection_of_overlapping_squares() {
        let a = unit_square();
        let b = ConvexPolygon::new(vec![
            Point::new(0.5, 0.5),
            Point::new(1.5, 0.5),
            Point::new(1.5, 1.5),
            Point::new(0.5, 1.5),
        ])
        .unwrap();
        let i = a.intersection(&b).unwrap();
        assert!((i.area() - 0.25).abs() < 1e-9);
        assert!(i.contains(Point::new(0.75, 0.75)));
        assert_eq!(
            a.intersection(&b).map(|p| p.area()),
            b.intersection(&a).map(|p| p.area()),
            "intersection area is symmetric"
        );
    }

    #[test]
    fn intersection_disjoint_and_touching_is_none() {
        let a = unit_square();
        let far = ConvexPolygon::new(vec![
            Point::new(5.0, 5.0),
            Point::new(6.0, 5.0),
            Point::new(6.0, 6.0),
            Point::new(5.0, 6.0),
        ])
        .unwrap();
        assert!(a.intersection(&far).is_none());
        // Shares the x = 1 edge: zero-area contact does not count.
        let adjacent = ConvexPolygon::new(vec![
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
        ])
        .unwrap();
        assert!(a.intersection(&adjacent).is_none());
    }

    #[test]
    fn intersection_with_contained_polygon_is_the_inner() {
        let outer = ConvexPolygon::from_bounds(&Bounds::square(10.0));
        let inner = ConvexPolygon::new(vec![
            Point::new(4.0, 4.0),
            Point::new(6.0, 4.0),
            Point::new(6.0, 6.0),
            Point::new(4.0, 6.0),
        ])
        .unwrap();
        let i = outer.intersection(&inner).unwrap();
        assert!((i.area() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_clips_shrink_monotonically() {
        let mut poly = unit_square();
        let mut prev = poly.area();
        for i in 1..6 {
            let c = 1.0 - i as f64 * 0.15;
            poly = poly.clip_halfplane(1.0, 0.0, c).unwrap();
            let a = poly.area();
            assert!(a <= prev + 1e-12);
            prev = a;
        }
    }
}
