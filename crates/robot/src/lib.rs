//! Mobile maintenance robots for the `robonet` workspace.
//!
//! Models the robot side of *Replacing Failed Sensor Nodes by Mobile
//! Robots* (Mei et al., ICDCS 2006):
//!
//! - constant-speed straight-line motion ([`motion::Leg`]) at the
//!   paper's 1 m/s (the speed of a Pioneer 3DX, §4.1),
//! - the location-update threshold: "the robot updates its location
//!   whenever it moves away from the last updated location by a distance
//!   threshold" of 20 m (§4.2),
//! - a first-come-first-serve replacement queue ("a robot queues such
//!   requests and handles the failures in a first-come-first-serve
//!   fashion", §3.1) — [`RobotState`],
//! - a motion-energy model ([`energy::EnergyModel`]) following the
//!   Pioneer 3DX measurements of Mei et al. \[9\], so motion overhead can
//!   be reported in joules as well as metres.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod motion;
mod state;

pub use state::{ReplacementTask, RobotState};
