//! Robot motion-energy model.
//!
//! The paper measures motion overhead in metres because "the robots'
//! traveling distance ... reflects the energy consumed" (§2). This
//! module makes that relationship explicit using the Pioneer 3DX
//! measurements from Mei et al., *A Case Study of Mobile Robot's Energy
//! Consumption and Conservation Techniques* (ICAR 2005) — reference \[9\]
//! of the paper: an idle/hotel load of roughly 13 W (embedded computer,
//! sonar, microcontroller) plus a motion load that grows roughly
//! linearly with speed.

use robonet_des::SimDuration;

/// Power model `P(v) = idle_w + k_motion * v` for a wheeled robot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Hotel load drawn whether or not the robot moves, in watts.
    pub idle_w: f64,
    /// Incremental motion power per unit speed, in watts per (m/s).
    pub k_motion: f64,
}

impl Default for EnergyModel {
    /// Pioneer 3DX-like constants: ~13 W hotel load, ~11 W of extra
    /// draw at the paper's 1 m/s travel speed.
    fn default() -> Self {
        EnergyModel {
            idle_w: 13.0,
            k_motion: 11.0,
        }
    }
}

impl EnergyModel {
    /// Instantaneous power at travel speed `v` (m/s), in watts.
    pub fn power_at(&self, v: f64) -> f64 {
        assert!(v >= 0.0, "speed cannot be negative");
        self.idle_w + self.k_motion * v
    }

    /// Energy to travel `distance` metres at speed `v`, in joules
    /// (includes the hotel load for the travel duration).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not positive.
    pub fn travel_energy(&self, distance: f64, v: f64) -> f64 {
        assert!(v > 0.0, "speed must be positive");
        assert!(distance >= 0.0, "distance cannot be negative");
        self.power_at(v) * (distance / v)
    }

    /// Energy spent idling for `dt`, in joules.
    pub fn idle_energy(&self, dt: SimDuration) -> f64 {
        self.idle_w * dt.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_composition() {
        let m = EnergyModel::default();
        assert_eq!(m.power_at(0.0), 13.0);
        assert_eq!(m.power_at(1.0), 24.0);
        assert!(m.power_at(2.0) > m.power_at(1.0));
    }

    #[test]
    fn travel_energy_proportional_to_distance() {
        let m = EnergyModel::default();
        let e100 = m.travel_energy(100.0, 1.0);
        let e200 = m.travel_energy(200.0, 1.0);
        assert!((e200 - 2.0 * e100).abs() < 1e-9);
        // 100 m at 1 m/s = 100 s at 24 W = 2400 J.
        assert!((e100 - 2400.0).abs() < 1e-9);
    }

    #[test]
    fn faster_travel_saves_hotel_energy() {
        // Driving faster costs more motion power but amortizes the hotel
        // load over less time; with a linear motion term the total is
        // identical motion energy + smaller hotel share.
        let m = EnergyModel::default();
        let slow = m.travel_energy(100.0, 0.5);
        let fast = m.travel_energy(100.0, 2.0);
        assert!(fast < slow, "hotel load dominates at low speed");
    }

    #[test]
    fn idle_energy_scales_with_time() {
        let m = EnergyModel::default();
        assert_eq!(m.idle_energy(SimDuration::from_secs(10.0)), 130.0);
        assert_eq!(m.idle_energy(SimDuration::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn travel_zero_speed_rejected() {
        EnergyModel::default().travel_energy(1.0, 0.0);
    }
}
