//! Per-robot maintenance state: the FCFS task queue and motion status.

use std::collections::VecDeque;

use robonet_des::{NodeId, SimTime};
use robonet_geom::Point;

use crate::motion::Leg;

/// A pending node replacement ("upon receiving the request to replace a
/// failed node, a robot moves to the failed node's location and replaces
/// it by a functional one", paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplacementTask {
    /// The failed sensor to replace.
    pub failed: NodeId,
    /// Where it is (replacements are installed at the same location,
    /// §2(d)).
    pub loc: Point,
    /// When the manager dispatched the task (for repair-delay metrics).
    pub dispatched_at: SimTime,
}

#[derive(Debug, Clone)]
enum Activity {
    Idle { at: Point },
    Moving { leg: Leg, task: ReplacementTask },
}

/// A maintenance robot: current position/motion, FCFS queue of
/// replacement tasks, odometer, and spare-node inventory.
///
/// ```
/// use robonet_des::{NodeId, SimTime};
/// use robonet_geom::Point;
/// use robonet_robot::{ReplacementTask, RobotState};
///
/// let mut robot = RobotState::new(NodeId::new(100), Point::ZERO, 1.0);
/// let task = ReplacementTask {
///     failed: NodeId::new(7),
///     loc: Point::new(100.0, 0.0),
///     dispatched_at: SimTime::ZERO,
/// };
/// let leg = robot.enqueue(task, SimTime::ZERO).expect("idle robot departs");
/// assert_eq!(leg.arrival(), SimTime::from_secs(100.0)); // 100 m at 1 m/s
/// let (done, next) = robot.arrive(leg.arrival());
/// assert_eq!(done.failed, NodeId::new(7));
/// assert!(next.is_none());
/// assert_eq!(robot.odometer(), 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct RobotState {
    /// The robot's node id.
    pub id: NodeId,
    activity: Activity,
    queue: VecDeque<ReplacementTask>,
    speed: f64,
    odometer: f64,
    /// Where this robot last broadcast its location from (drives the
    /// 20 m update-threshold logic in the harness).
    pub last_update_loc: Point,
    /// Spare functional nodes on board; `None` models an unlimited
    /// supply (the paper does not model depletion).
    pub spares: Option<u32>,
    /// Location-update sequence counter (flooded updates are
    /// deduplicated per origin and sequence number).
    next_seq: u32,
}

impl RobotState {
    /// Creates an idle robot at `at` travelling at `speed` m/s (the
    /// paper uses 1 m/s).
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not finite and positive.
    pub fn new(id: NodeId, at: Point, speed: f64) -> Self {
        assert!(speed.is_finite() && speed > 0.0, "speed must be positive");
        RobotState {
            id,
            activity: Activity::Idle { at },
            queue: VecDeque::new(),
            speed,
            odometer: 0.0,
            last_update_loc: at,
            spares: None,
            next_seq: 0,
        }
    }

    /// Travel speed in m/s.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Changes the travel speed (fault layer: degraded/repaired robots).
    /// Takes effect on the next leg; call [`RobotState::interrupt`]
    /// first to re-plan a leg already under way.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not finite and positive.
    pub fn set_speed(&mut self, speed: f64) {
        assert!(speed.is_finite() && speed > 0.0, "speed must be positive");
        self.speed = speed;
    }

    /// Total distance travelled so far, in metres — the paper's motion
    /// overhead numerator.
    pub fn odometer(&self) -> f64 {
        self.odometer
    }

    /// Position at time `now` (interpolated along the current leg while
    /// moving).
    pub fn position_at(&self, now: SimTime) -> Point {
        match &self.activity {
            Activity::Idle { at } => *at,
            Activity::Moving { leg, .. } => leg.position_at(now),
        }
    }

    /// The current motion leg, if moving.
    pub fn current_leg(&self) -> Option<&Leg> {
        match &self.activity {
            Activity::Idle { .. } => None,
            Activity::Moving { leg, .. } => Some(leg),
        }
    }

    /// The task being executed, if moving.
    pub fn current_task(&self) -> Option<&ReplacementTask> {
        match &self.activity {
            Activity::Idle { .. } => None,
            Activity::Moving { task, .. } => Some(task),
        }
    }

    /// Whether the robot is parked with an empty queue.
    pub fn is_idle(&self) -> bool {
        matches!(self.activity, Activity::Idle { .. }) && self.queue.is_empty()
    }

    /// Pending tasks (excluding the one being executed).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Next location-update sequence number (1, 2, ...).
    pub fn next_seq(&mut self) -> u32 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Enqueues a replacement task. If the robot was idle it departs
    /// immediately; the new leg is returned so the caller can schedule
    /// the arrival event and the threshold-crossing location updates.
    pub fn enqueue(&mut self, task: ReplacementTask, now: SimTime) -> Option<Leg> {
        match &self.activity {
            Activity::Idle { at } => {
                let leg = Leg::new(*at, task.loc, now, self.speed);
                self.activity = Activity::Moving { leg, task };
                Some(leg)
            }
            Activity::Moving { .. } => {
                self.queue.push_back(task);
                None
            }
        }
    }

    /// Completes the current leg at its arrival time: credits the
    /// odometer, installs the replacement, and — FCFS — departs for the
    /// next queued task if any.
    ///
    /// Returns the finished task and the next leg (if departing again).
    ///
    /// # Panics
    ///
    /// Panics if the robot is not moving (arrival events must match
    /// departures one-to-one).
    pub fn arrive(&mut self, now: SimTime) -> (ReplacementTask, Option<Leg>) {
        let Activity::Moving { leg, task } = self.activity.clone() else {
            panic!("arrive() called on an idle robot");
        };
        debug_assert!(now >= leg.arrival(), "arrival event fired early");
        self.odometer += leg.distance();
        if let Some(s) = self.spares.as_mut() {
            assert!(*s > 0, "robot arrived with no spare nodes");
            *s -= 1;
        }
        let at = leg.to();
        match self.queue.pop_front() {
            Some(next) => {
                let next_leg = Leg::new(at, next.loc, now, self.speed);
                self.activity = Activity::Moving {
                    leg: next_leg,
                    task: next,
                };
                (task, Some(next_leg))
            }
            None => {
                self.activity = Activity::Idle { at };
                (task, None)
            }
        }
    }

    /// Stops the robot mid-leg (breakdown): credits the odometer for
    /// the distance actually covered, parks at the current position,
    /// and pushes the in-flight task back to the *front* of the queue
    /// so it is the first to resume. No-op when already idle. Returns
    /// `true` if a leg was interrupted (the caller must invalidate its
    /// pending arrival event).
    pub fn interrupt(&mut self, now: SimTime) -> bool {
        let Activity::Moving { leg, task } = self.activity.clone() else {
            return false;
        };
        let at = leg.position_at(now);
        self.odometer += leg.from().distance(at);
        self.queue.push_front(task);
        self.activity = Activity::Idle { at };
        true
    }

    /// Departs for the first queued task if parked with work pending
    /// (fault layer: breakdown recovery, slowdown re-planning). Returns
    /// the new leg, or `None` when already moving or with nothing to
    /// do.
    pub fn resume(&mut self, now: SimTime) -> Option<Leg> {
        let Activity::Idle { at } = self.activity else {
            return None;
        };
        let task = self.queue.pop_front()?;
        let leg = Leg::new(at, task.loc, now, self.speed);
        self.activity = Activity::Moving { leg, task };
        Some(leg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn task(failed: u32, loc: Point, at: f64) -> ReplacementTask {
        ReplacementTask {
            failed: NodeId::new(failed),
            loc,
            dispatched_at: t(at),
        }
    }

    #[test]
    fn idle_robot_departs_immediately() {
        let mut r = RobotState::new(NodeId::new(100), p(0.0, 0.0), 1.0);
        assert!(r.is_idle());
        let leg = r.enqueue(task(1, p(100.0, 0.0), 0.0), t(0.0)).unwrap();
        assert_eq!(leg.arrival(), t(100.0));
        assert!(!r.is_idle());
        assert_eq!(r.current_task().unwrap().failed, NodeId::new(1));
        assert_eq!(r.position_at(t(50.0)), p(50.0, 0.0));
    }

    #[test]
    fn busy_robot_queues_fcfs() {
        let mut r = RobotState::new(NodeId::new(100), p(0.0, 0.0), 1.0);
        r.enqueue(task(1, p(100.0, 0.0), 0.0), t(0.0)).unwrap();
        assert!(r.enqueue(task(2, p(0.0, 50.0), 5.0), t(5.0)).is_none());
        assert!(r.enqueue(task(3, p(10.0, 10.0), 6.0), t(6.0)).is_none());
        assert_eq!(r.queue_len(), 2);

        let (done, next) = r.arrive(t(100.0));
        assert_eq!(done.failed, NodeId::new(1));
        let next = next.expect("second task departs");
        assert_eq!(next.from(), p(100.0, 0.0));
        assert_eq!(next.to(), p(0.0, 50.0), "FCFS: task 2 before task 3");
        assert_eq!(r.queue_len(), 1);
    }

    #[test]
    fn odometer_accumulates_leg_distances() {
        let mut r = RobotState::new(NodeId::new(100), p(0.0, 0.0), 1.0);
        r.enqueue(task(1, p(100.0, 0.0), 0.0), t(0.0)).unwrap();
        r.enqueue(task(2, p(100.0, 50.0), 0.0), t(0.0));
        let (_, leg2) = r.arrive(t(100.0));
        assert_eq!(r.odometer(), 100.0);
        let (_, none) = r.arrive(leg2.unwrap().arrival());
        assert!(none.is_none());
        assert_eq!(r.odometer(), 150.0);
        assert!(r.is_idle());
        assert_eq!(r.position_at(t(1000.0)), p(100.0, 50.0));
    }

    #[test]
    fn spares_deplete_when_tracked() {
        let mut r = RobotState::new(NodeId::new(100), p(0.0, 0.0), 1.0);
        r.spares = Some(2);
        r.enqueue(task(1, p(10.0, 0.0), 0.0), t(0.0)).unwrap();
        r.arrive(t(10.0));
        assert_eq!(r.spares, Some(1));
    }

    #[test]
    #[should_panic(expected = "no spare nodes")]
    fn arriving_without_spares_panics() {
        let mut r = RobotState::new(NodeId::new(100), p(0.0, 0.0), 1.0);
        r.spares = Some(0);
        r.enqueue(task(1, p(10.0, 0.0), 0.0), t(0.0)).unwrap();
        r.arrive(t(10.0));
    }

    #[test]
    #[should_panic(expected = "idle robot")]
    fn arrive_while_idle_panics() {
        let mut r = RobotState::new(NodeId::new(100), p(0.0, 0.0), 1.0);
        r.arrive(t(1.0));
    }

    #[test]
    fn interrupt_credits_partial_travel_and_requeues_in_front() {
        let mut r = RobotState::new(NodeId::new(100), p(0.0, 0.0), 1.0);
        r.enqueue(task(1, p(100.0, 0.0), 0.0), t(0.0)).unwrap();
        r.enqueue(task(2, p(0.0, 50.0), 0.0), t(0.0));
        assert!(r.interrupt(t(40.0)), "a moving robot can be interrupted");
        assert_eq!(r.odometer(), 40.0, "only the covered distance counts");
        assert_eq!(
            r.position_at(t(99.0)),
            p(40.0, 0.0),
            "parked where it stopped"
        );
        assert_eq!(r.queue_len(), 2, "in-flight task pushed back");
        assert!(
            !r.interrupt(t(41.0)),
            "idle robots have nothing to interrupt"
        );

        // Resuming departs for the interrupted task first (front of queue).
        let leg = r.resume(t(50.0)).expect("queued work resumes");
        assert_eq!(leg.from(), p(40.0, 0.0));
        assert_eq!(leg.to(), p(100.0, 0.0), "interrupted task resumes first");
        assert_eq!(r.queue_len(), 1);
        assert!(r.resume(t(51.0)).is_none(), "already moving");
    }

    #[test]
    fn resume_with_empty_queue_is_a_no_op() {
        let mut r = RobotState::new(NodeId::new(100), p(0.0, 0.0), 1.0);
        assert!(r.resume(t(1.0)).is_none());
        assert!(r.is_idle());
    }

    #[test]
    fn speed_changes_apply_to_the_next_leg() {
        let mut r = RobotState::new(NodeId::new(100), p(0.0, 0.0), 1.0);
        r.enqueue(task(1, p(100.0, 0.0), 0.0), t(0.0)).unwrap();
        r.interrupt(t(40.0));
        r.set_speed(0.5);
        assert_eq!(r.speed(), 0.5);
        let leg = r.resume(t(40.0)).unwrap();
        assert_eq!(leg.arrival(), t(160.0), "60 m left at 0.5 m/s");
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let mut r = RobotState::new(NodeId::new(100), p(0.0, 0.0), 1.0);
        r.set_speed(0.0);
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut r = RobotState::new(NodeId::new(100), p(0.0, 0.0), 1.0);
        assert_eq!(r.next_seq(), 1);
        assert_eq!(r.next_seq(), 2);
    }
}
