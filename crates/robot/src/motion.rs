//! Constant-speed straight-line motion legs.

use robonet_des::{SimDuration, SimTime};
use robonet_geom::Point;

/// One straight-line movement from a start point to a target at constant
/// speed, beginning at a known time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Leg {
    from: Point,
    to: Point,
    start: SimTime,
    speed: f64,
}

impl Leg {
    /// Creates a leg from `from` to `to` starting at `start`, travelled
    /// at `speed` metres per second.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not finite and positive.
    pub fn new(from: Point, to: Point, start: SimTime, speed: f64) -> Self {
        assert!(speed.is_finite() && speed > 0.0, "speed must be positive");
        Leg {
            from,
            to,
            start,
            speed,
        }
    }

    /// Start point.
    pub fn from(&self) -> Point {
        self.from
    }

    /// Target point.
    pub fn to(&self) -> Point {
        self.to
    }

    /// Departure time.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Travel speed in m/s.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Total length in metres.
    pub fn distance(&self) -> f64 {
        self.from.distance(self.to)
    }

    /// Travel time for the whole leg.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs(self.distance() / self.speed)
    }

    /// Arrival time at the target.
    pub fn arrival(&self) -> SimTime {
        self.start + self.duration()
    }

    /// Position at time `t`, clamped to the endpoints outside the
    /// travel window.
    pub fn position_at(&self, t: SimTime) -> Point {
        if t <= self.start {
            return self.from;
        }
        // Snap exactly at (or past) arrival: the arrival instant is
        // rounded to nanoseconds, so the interpolation below could land
        // a hair short of the target.
        if t >= self.arrival() {
            return self.to;
        }
        let total = self.distance();
        if total <= f64::EPSILON {
            return self.to;
        }
        let travelled = t.duration_since(self.start).as_secs_f64() * self.speed;
        if travelled >= total {
            self.to
        } else {
            self.from.lerp(self.to, travelled / total)
        }
    }

    /// Times at which the robot is exactly `k × threshold` metres along
    /// the leg, for k = 1, 2, ... — the instants it must broadcast a
    /// location update (paper §4.2: threshold 20 m, "less than 1/3 of
    /// the sensors' transmission range ... to ensure that the robots can
    /// receive failure messages all the time").
    ///
    /// The arrival point itself is *not* included (arrival triggers its
    /// own update).
    pub fn update_times(&self, threshold: f64) -> Vec<SimTime> {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "threshold must be positive"
        );
        let total = self.distance();
        let mut out = Vec::new();
        let mut d = threshold;
        while d < total - 1e-9 {
            out.push(self.start + SimDuration::from_secs(d / self.speed));
            d += threshold;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn timing_at_one_meter_per_second() {
        let leg = Leg::new(p(0.0, 0.0), p(100.0, 0.0), t(10.0), 1.0);
        assert_eq!(leg.distance(), 100.0);
        assert_eq!(leg.duration(), SimDuration::from_secs(100.0));
        assert_eq!(leg.arrival(), t(110.0));
    }

    #[test]
    fn position_interpolates_and_clamps() {
        let leg = Leg::new(p(0.0, 0.0), p(100.0, 0.0), t(10.0), 2.0);
        assert_eq!(leg.position_at(t(0.0)), p(0.0, 0.0), "before start");
        assert_eq!(leg.position_at(t(10.0)), p(0.0, 0.0));
        assert_eq!(leg.position_at(t(35.0)), p(50.0, 0.0), "halfway");
        assert_eq!(leg.position_at(t(60.0)), p(100.0, 0.0));
        assert_eq!(leg.position_at(t(1000.0)), p(100.0, 0.0), "after arrival");
    }

    #[test]
    fn diagonal_leg_positions() {
        let leg = Leg::new(p(0.0, 0.0), p(30.0, 40.0), t(0.0), 1.0);
        assert_eq!(leg.distance(), 50.0);
        let mid = leg.position_at(t(25.0));
        assert!((mid.x - 15.0).abs() < 1e-9 && (mid.y - 20.0).abs() < 1e-9);
    }

    #[test]
    fn update_times_every_threshold() {
        // 100 m at 1 m/s with a 20 m threshold: updates at 20/40/60/80 m
        // (not at 100 m — arrival handles that).
        let leg = Leg::new(p(0.0, 0.0), p(100.0, 0.0), t(0.0), 1.0);
        let times = leg.update_times(20.0);
        assert_eq!(
            times,
            vec![t(20.0), t(40.0), t(60.0), t(80.0)],
            "one update per 20 m travelled"
        );
    }

    #[test]
    fn update_times_exact_multiple_excludes_arrival() {
        let leg = Leg::new(p(0.0, 0.0), p(40.0, 0.0), t(0.0), 1.0);
        assert_eq!(leg.update_times(20.0), vec![t(20.0)]);
    }

    #[test]
    fn short_leg_no_updates() {
        let leg = Leg::new(p(0.0, 0.0), p(10.0, 0.0), t(0.0), 1.0);
        assert!(leg.update_times(20.0).is_empty());
    }

    #[test]
    fn zero_length_leg() {
        let leg = Leg::new(p(5.0, 5.0), p(5.0, 5.0), t(3.0), 1.0);
        assert_eq!(leg.arrival(), t(3.0));
        assert_eq!(leg.position_at(t(10.0)), p(5.0, 5.0));
        assert!(leg.update_times(20.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let _ = Leg::new(p(0.0, 0.0), p(1.0, 0.0), t(0.0), 0.0);
    }
}
