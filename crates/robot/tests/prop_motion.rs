//! Property tests for robot motion and queueing.

use robonet_des::check::{self, Gen, Outcome};

use robonet_des::{NodeId, SimTime};
use robonet_geom::Point;
use robonet_robot::motion::Leg;
use robonet_robot::{ReplacementTask, RobotState};

fn point() -> Gen<Point> {
    check::pair(check::f64s(0.0..1000.0), check::f64s(0.0..1000.0)).map(|&(x, y)| Point::new(x, y))
}

/// The invariant checked by [`leg_position_monotone`], factored out so
/// the saved proptest regression below exercises the identical code.
fn check_leg_position_monotone(from: Point, to: Point, speed: f64) {
    let leg = Leg::new(from, to, SimTime::ZERO, speed);
    let total = leg.distance();
    let mut last_remaining = f64::INFINITY;
    for i in 0..=20 {
        let t = SimTime::from_secs(i as f64 * total / speed / 20.0 + 0.0);
        let p = leg.position_at(t);
        // On segment: dist(from, p) + dist(p, to) ≈ total.
        assert!((from.distance(p) + p.distance(to) - total).abs() < 1e-6);
        let remaining = p.distance(to);
        assert!(remaining <= last_remaining + 1e-9);
        last_remaining = remaining;
    }
    assert_eq!(leg.position_at(leg.arrival()), to);
}

/// Positions along a leg stay on the segment and progress
/// monotonically toward the target.
#[test]
fn leg_position_monotone() {
    check::forall(
        "leg_position_monotone",
        &check::triple(point(), point(), check::f64s(0.1..50.0)),
        |&(from, to, speed)| {
            check_leg_position_monotone(from, to, speed);
            Outcome::Pass
        },
    );
}

/// Regression: a long axis-aligned leg at the minimum speed, found by
/// the retired proptest harness (saved as
/// `prop_motion.proptest-regressions`). Rounding in `position_at` once
/// let the remaining distance tick upward near the arrival time.
#[test]
fn leg_position_monotone_regression_long_slow_leg() {
    check_leg_position_monotone(
        Point::new(810.0964138170168, 0.0),
        Point::new(0.0, 0.0),
        0.1,
    );
}

/// Threshold-update points are spaced exactly one threshold apart
/// along the leg and never include the endpoints.
#[test]
fn update_points_spacing() {
    check::forall(
        "update_points_spacing",
        &check::quad(
            point(),
            point(),
            check::f64s(1.0..100.0),
            check::f64s(0.5..10.0),
        ),
        |&(from, to, threshold, speed)| {
            let leg = Leg::new(from, to, SimTime::ZERO, speed);
            let times = leg.update_times(threshold);
            let total = leg.distance();
            let expected = if total <= threshold {
                0
            } else {
                ((total - 1e-9) / threshold).floor() as usize
            };
            assert_eq!(times.len(), expected, "total {total} threshold {threshold}");
            for (i, &t) in times.iter().enumerate() {
                assert!(t > leg.start());
                assert!(t < leg.arrival());
                let travelled = (i + 1) as f64 * threshold;
                let p = leg.position_at(t);
                assert!((from.distance(p) - travelled).abs() < 1e-6);
            }
            Outcome::Pass
        },
    );
}

/// FCFS: tasks complete in the order they were enqueued, and the
/// odometer equals the sum of the leg distances.
#[test]
fn fcfs_order_and_odometer() {
    check::forall(
        "fcfs_order_and_odometer",
        &check::vec_of(point(), 1..12),
        |tasks| {
            let mut robot = RobotState::new(NodeId::new(0), Point::new(500.0, 500.0), 1.0);
            let now = SimTime::ZERO;
            let mut legs = Vec::new();
            for (i, &loc) in tasks.iter().enumerate() {
                let task = ReplacementTask {
                    failed: NodeId::new(i as u32 + 1),
                    loc,
                    dispatched_at: now,
                };
                if let Some(leg) = robot.enqueue(task, now) {
                    legs.push(leg);
                }
            }
            let mut completed = Vec::new();
            let mut expected_dist = 0.0;
            while let Some(leg) = legs.pop() {
                expected_dist += leg.distance();
                let (task, next) = robot.arrive(leg.arrival());
                completed.push(task.failed.as_u32());
                if let Some(n) = next {
                    legs.push(n);
                }
            }
            let expected_order: Vec<u32> = (1..=tasks.len() as u32).collect();
            assert_eq!(completed, expected_order);
            assert!((robot.odometer() - expected_dist).abs() < 1e-9);
            assert!(robot.is_idle());
            Outcome::Pass
        },
    );
}
