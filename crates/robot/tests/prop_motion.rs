//! Property tests for robot motion and queueing.

use proptest::prelude::*;

use robonet_des::{NodeId, SimTime};
use robonet_geom::Point;
use robonet_robot::motion::Leg;
use robonet_robot::{ReplacementTask, RobotState};

fn point() -> impl Strategy<Value = Point> {
    (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// Positions along a leg stay on the segment and progress
    /// monotonically toward the target.
    #[test]
    fn leg_position_monotone(from in point(), to in point(), speed in 0.1f64..50.0) {
        let leg = Leg::new(from, to, SimTime::ZERO, speed);
        let total = leg.distance();
        let mut last_remaining = f64::INFINITY;
        for i in 0..=20 {
            let t = SimTime::from_secs(i as f64 * total / speed / 20.0 + 0.0);
            let p = leg.position_at(t);
            // On segment: dist(from, p) + dist(p, to) ≈ total.
            prop_assert!((from.distance(p) + p.distance(to) - total).abs() < 1e-6);
            let remaining = p.distance(to);
            prop_assert!(remaining <= last_remaining + 1e-9);
            last_remaining = remaining;
        }
        prop_assert_eq!(leg.position_at(leg.arrival()), to);
    }

    /// Threshold-update points are spaced exactly one threshold apart
    /// along the leg and never include the endpoints.
    #[test]
    fn update_points_spacing(
        from in point(),
        to in point(),
        threshold in 1.0f64..100.0,
        speed in 0.5f64..10.0,
    ) {
        let leg = Leg::new(from, to, SimTime::ZERO, speed);
        let times = leg.update_times(threshold);
        let total = leg.distance();
        let expected = if total <= threshold {
            0
        } else {
            ((total - 1e-9) / threshold).floor() as usize
        };
        prop_assert_eq!(times.len(), expected, "total {} threshold {}", total, threshold);
        for (i, &t) in times.iter().enumerate() {
            prop_assert!(t > leg.start());
            prop_assert!(t < leg.arrival());
            let travelled = (i + 1) as f64 * threshold;
            let p = leg.position_at(t);
            prop_assert!((from.distance(p) - travelled).abs() < 1e-6);
        }
    }

    /// FCFS: tasks complete in the order they were enqueued, and the
    /// odometer equals the sum of the leg distances.
    #[test]
    fn fcfs_order_and_odometer(tasks in prop::collection::vec(point(), 1..12)) {
        let mut robot = RobotState::new(NodeId::new(0), Point::new(500.0, 500.0), 1.0);
        let now = SimTime::ZERO;
        let mut legs = Vec::new();
        for (i, &loc) in tasks.iter().enumerate() {
            let task = ReplacementTask { failed: NodeId::new(i as u32 + 1), loc, dispatched_at: now };
            if let Some(leg) = robot.enqueue(task, now) {
                legs.push(leg);
            }
        }
        let mut completed = Vec::new();
        let mut expected_dist = 0.0;
        while let Some(leg) = legs.pop() {
            expected_dist += leg.distance();
            let (task, next) = robot.arrive(leg.arrival());
            completed.push(task.failed.as_u32());
            if let Some(n) = next {
                legs.push(n);
            }
        }
        let expected_order: Vec<u32> = (1..=tasks.len() as u32).collect();
        prop_assert_eq!(completed, expected_order);
        prop_assert!((robot.odometer() - expected_dist).abs() < 1e-9);
        prop_assert!(robot.is_idle());
    }
}
